// Package reduce implements the reduction algorithmic skeleton: P partial
// values, one per worker, are combined pairwise into a single result
// according to an explicit Plan.
//
// The skeleton's intrinsic property is its combining topology. The same
// P−1 combines can be arranged as
//
//   - a flat (star) reduction — every partial travels to one root, whose
//     CPU serialises the combines: latency O(P) in combine time, but only
//     one node is occupied;
//   - a binary tree — ⌈log₂P⌉ rounds of concurrent pair-combines: the
//     classic latency/parallelism trade;
//   - a calibrated tree — the binary tree skewed by Algorithm 1's ranking,
//     so combines (and in particular the final ones on the critical path)
//     land on the fittest nodes of a heterogeneous grid.
//
// Plans are data, not behaviour: NewPlan builds any of the shapes, Validate
// checks structural soundness, and Run executes a plan on any platform.
// On the grid platform a step From→To costs the transfer of the partial
// From→master→To (the grid is a star; forwarding is store-and-forward
// through the master) plus the combine on To's CPU; concurrent combines on
// one node serialise on its CPU resource exactly like any other work.
package reduce

import (
	"fmt"
	"sort"
	"time"

	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/engine"
	"grasp/internal/trace"
)

// Shape selects a reduction topology.
type Shape int

// Plan shapes.
const (
	// Flat sends every partial to the root, which combines them serially.
	Flat Shape = iota
	// Tree pairs survivors round by round: ⌈log₂P⌉ concurrent rounds.
	Tree
	// CalibratedTree is Tree skewed by a fitness ranking: each pair combines
	// on its fitter member, and pairing joins the fittest survivor with the
	// slowest, so slow nodes leave the reduction as early as possible.
	CalibratedTree
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case Flat:
		return "flat"
	case Tree:
		return "tree"
	case CalibratedTree:
		return "calibrated"
	default:
		return fmt.Sprintf("shape(%d)", int(s))
	}
}

// Step is one combine: worker From ships its partial to worker To, which
// combines it into its own.
type Step struct {
	From, To int
}

// Plan is a reduction schedule: rounds execute in sequence, the steps of a
// round execute concurrently.
type Plan struct {
	Shape  Shape
	Root   int
	Rounds [][]Step
}

// Steps returns the total number of combines in the plan.
func (p Plan) Steps() int {
	var n int
	for _, r := range p.Rounds {
		n += len(r)
	}
	return n
}

// Depth returns the number of rounds.
func (p Plan) Depth() int { return len(p.Rounds) }

// Validate checks that the plan reduces the given workers to exactly its
// Root: every worker except the root is eliminated exactly once, no step
// reads an eliminated worker, and the root survives to the end.
func (p Plan) Validate(workers []int) error {
	alive := make(map[int]bool, len(workers))
	for _, w := range workers {
		alive[w] = true
	}
	if !alive[p.Root] {
		return fmt.Errorf("reduce: root %d is not a worker", p.Root)
	}
	for ri, round := range p.Rounds {
		// Within one round, a worker may appear in at most one step (steps
		// are concurrent).
		used := make(map[int]bool)
		for _, s := range round {
			if !alive[s.From] {
				return fmt.Errorf("reduce: round %d reads eliminated or unknown worker %d", ri, s.From)
			}
			if !alive[s.To] {
				return fmt.Errorf("reduce: round %d combines at eliminated or unknown worker %d", ri, s.To)
			}
			if s.From == s.To {
				return fmt.Errorf("reduce: round %d has self-combine at %d", ri, s.From)
			}
			if used[s.From] || used[s.To] {
				return fmt.Errorf("reduce: round %d uses worker twice", ri)
			}
			used[s.From], used[s.To] = true, true
		}
		for _, s := range round {
			alive[s.From] = false
		}
	}
	survivors := 0
	for _, a := range alive {
		if a {
			survivors++
		}
	}
	if survivors != 1 || !alive[p.Root] {
		return fmt.Errorf("reduce: %d survivors, root alive=%v (want exactly the root)", survivors, alive[p.Root])
	}
	return nil
}

// NewPlan builds a plan of the given shape over the workers. scores maps
// worker → predicted combine time (lower is fitter; from calibrate.Ranking);
// it is required for CalibratedTree (which also roots the plan at the
// fittest worker) and ignored otherwise. Flat and Tree root at workers[0].
// A single worker yields an empty plan rooted at it.
func NewPlan(shape Shape, workers []int, scores map[int]float64) Plan {
	if len(workers) == 0 {
		return Plan{Shape: shape}
	}
	ws := append([]int(nil), workers...)
	switch shape {
	case Flat:
		root := ws[0]
		p := Plan{Shape: shape, Root: root}
		// One step per round: the root is the To of every combine, and a
		// worker may appear in only one step of a (concurrent) round, so the
		// star degenerates to a fully serial schedule — which is precisely
		// the flat reduction's cost model.
		for _, w := range ws[1:] {
			p.Rounds = append(p.Rounds, []Step{{From: w, To: root}})
		}
		return p
	case CalibratedTree:
		sort.SliceStable(ws, func(a, b int) bool {
			sa, sb := scoreOf(scores, ws[a]), scoreOf(scores, ws[b])
			if sa != sb {
				return sa < sb
			}
			return ws[a] < ws[b]
		})
		return pairwisePlan(shape, ws, func(a, b int) (keep, give int) {
			if scoreOf(scores, a) <= scoreOf(scores, b) {
				return a, b
			}
			return b, a
		}, true)
	default: // Tree
		return pairwisePlan(shape, ws, func(a, b int) (keep, give int) {
			return a, b
		}, false)
	}
}

// scoreOf reads a score with a neutral default for unknown workers.
func scoreOf(scores map[int]float64, w int) float64 {
	if scores == nil {
		return 0
	}
	return scores[w]
}

// pairwisePlan folds survivors round by round. When skew is true the
// fittest survivor pairs with the slowest (survivors must arrive sorted
// fittest-first); otherwise adjacent survivors pair in order.
func pairwisePlan(shape Shape, ws []int, choose func(a, b int) (keep, give int), skew bool) Plan {
	survivors := append([]int(nil), ws...)
	var rounds [][]Step
	for len(survivors) > 1 {
		var round []Step
		var next []int
		if skew {
			// Pair survivor[i] (fit) with survivor[n-1-i] (slow): slow nodes
			// feed their partials in and exit immediately.
			n := len(survivors)
			for i := 0; i < n/2; i++ {
				keep, give := choose(survivors[i], survivors[n-1-i])
				round = append(round, Step{From: give, To: keep})
				next = append(next, keep)
			}
			if n%2 == 1 {
				next = append(next, survivors[n/2])
			}
			// Preserve fittest-first order for the next round: keeps came out
			// in fitness order already because survivors was sorted.
		} else {
			for i := 0; i+1 < len(survivors); i += 2 {
				keep, give := choose(survivors[i], survivors[i+1])
				round = append(round, Step{From: give, To: keep})
				next = append(next, keep)
			}
			if len(survivors)%2 == 1 {
				next = append(next, survivors[len(survivors)-1])
			}
		}
		rounds = append(rounds, round)
		survivors = next
	}
	return Plan{Shape: shape, Root: survivors[0], Rounds: rounds}
}

// Op describes the combine operation.
type Op struct {
	// CombineCost is the operation count of one combine (simulated
	// platforms).
	CombineCost float64
	// Bytes is the payload size of one partial value; each step moves it
	// From→master→To.
	Bytes float64
	// Fn combines two values (local platform; optional on simulators). It
	// must be associative; plans do not preserve operand order across
	// shapes, so non-commutative reductions should carry ordering inside
	// the value.
	Fn func(acc, v any) any
}

// Report is the outcome of a reduction.
type Report struct {
	// Value is the final combined value (nil when Op.Fn is nil).
	Value any
	// Root is the worker holding the result before the final gather.
	Root int
	// Makespan is the time from start until the result reached the master.
	Makespan time.Duration
	// Steps counts executed combines.
	Steps int
	// Rounds counts executed rounds.
	Rounds int
	// CombinesByWorker counts combines performed per worker.
	CombinesByWorker map[int]int
	// Failures counts steps whose transfer or combine hit a dead node; the
	// reduction routes the partial straight to the root instead (see Run).
	Failures int
	// DeadWorkers lists workers whose steps hit node failures, in
	// detection order (the engine's shared retire bookkeeping).
	DeadWorkers []int
}

// Run executes the plan from within process c and blocks until the final
// value has been gathered back to the master. values maps worker → initial
// partial (used only when op.Fn is set; missing entries are nil).
//
// Fault handling: a step that hits a crashed node (either side) loses the
// moving partial — the surviving side's value continues unchanged and the
// loss is counted in Failures, which callers surface to the GRASP core for
// recalibration. Reductions are partial-tolerant rather than self-healing:
// re-running a lost partial requires the application's task, which lives a
// layer above (core.RunMapReduce re-queues it there).
func Run(pf platform.Platform, c rt.Ctx, values map[int]any, op Op, plan Plan, log *trace.Log) Report {
	start := c.Now()
	rep := Report{
		Root:             plan.Root,
		CombinesByWorker: make(map[int]int),
	}
	vals := make(map[int]any, len(values))
	for w, v := range values {
		vals[w] = v
	}
	var faults engine.Faults

	type stepOut struct {
		step Step
		res  platform.Result
		val  any
	}

	for _, round := range plan.Rounds {
		if len(round) == 0 {
			continue
		}
		out := pf.Runtime().NewChan(fmt.Sprintf("reduce.round.%d", rep.Rounds), len(round))
		for _, s := range round {
			s := s
			fromVal := vals[s.From]
			toVal := vals[s.To]
			c.Go(fmt.Sprintf("reduce.%d.to.%d", s.From, s.To), func(cc rt.Ctx) {
				// Ship the partial out of From (transfer-out only)...
				send := pf.Exec(cc, s.From, platform.Task{ID: s.From, OutBytes: op.Bytes})
				if send.Failed() {
					out.Send(cc, stepOut{step: s, res: send})
					return
				}
				// ...then combine on To (transfer-in + compute).
				comb := pf.Exec(cc, s.To, platform.Task{
					ID: s.To, Cost: op.CombineCost, InBytes: op.Bytes,
					Fn: combineFn(op.Fn, toVal, fromVal),
				})
				out.Send(cc, stepOut{step: s, res: comb, val: comb.Value})
			})
		}
		for range round {
			v, ok := out.Recv(c)
			if !ok {
				break
			}
			so := v.(stepOut)
			if so.res.Failed() {
				faults.Failures++
				faults.Retire(so.res.Worker)
				if log != nil {
					log.Append(trace.Event{
						At: c.Now(), Kind: trace.KindNote,
						Msg: fmt.Sprintf("reduce: step %d→%d lost to node failure", so.step.From, so.step.To),
					})
				}
				// The partial on the dead side is gone; the live side's value
				// simply survives to the next round unchanged.
				continue
			}
			rep.Steps++
			rep.CombinesByWorker[so.step.To]++
			if op.Fn != nil {
				vals[so.step.To] = so.val
			}
			delete(vals, so.step.From)
			if log != nil {
				log.Append(trace.Event{
					At: c.Now(), Kind: trace.KindComplete,
					Node: pf.WorkerName(so.step.To), Task: so.step.From, Dur: so.res.Time,
				})
			}
		}
		rep.Rounds++
	}

	// Gather the result from the root to the master.
	final := pf.Exec(c, plan.Root, platform.Task{ID: plan.Root, OutBytes: op.Bytes})
	if final.Failed() {
		faults.Failures++
		faults.Retire(plan.Root)
	}
	rep.Failures = faults.Failures
	rep.DeadWorkers = faults.Dead
	if op.Fn != nil {
		rep.Value = vals[plan.Root]
	}
	rep.Makespan = c.Now() - start
	return rep
}

// combineFn binds the combine closure for platform.Exec.
func combineFn(fn func(acc, v any) any, acc, v any) func() any {
	if fn == nil {
		return nil
	}
	return func() any { return fn(acc, v) }
}
