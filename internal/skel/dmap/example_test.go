package dmap_test

import (
	"fmt"

	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/dmap"
	"grasp/internal/vsim"
)

// ExampleRun deals 90 unit tasks over two simulated nodes with calibrated
// 2:1 weights — one scatter per worker, the deal's whole dispatch traffic.
func ExampleRun() {
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: []grid.NodeSpec{
		{BaseSpeed: 20}, {BaseSpeed: 10},
	}})
	if err != nil {
		panic(err)
	}
	pf := platform.NewGridPlatform(sim, g, 0, 1)

	tasks := make([]platform.Task, 90)
	for i := range tasks {
		tasks[i] = platform.Task{ID: i, Cost: 1}
	}

	var rep dmap.Report
	sim.Go("main", func(c rt.Ctx) {
		rep = dmap.Run(pf, c, tasks, dmap.Options{
			Weights: map[int]float64{0: 2, 1: 1},
		})
	})
	if err := sim.Run(); err != nil {
		panic(err)
	}

	fmt.Printf("blocks: %d and %d tasks, %d scatters, makespan %v\n",
		rep.TasksByWorker[0], rep.TasksByWorker[1], rep.Scatters, rep.Makespan)
	// Output:
	// blocks: 60 and 30 tasks, 2 scatters, makespan 3s
}
