package dmap

import (
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/engine"
)

// The streaming map is the deal skeleton under the engine's shared
// adaptive contract: admitted tasks accumulate into decomposition waves,
// each wave is scattered in one round-trip per live worker by the engine's
// current weights, the wave's observed throughput re-weights the next
// (EWMA), and a detector breach recalibrates the weights in place from the
// engine's recent per-worker times. Waves are demand-driven: a wave fires
// as soon as the previous one has drained, sized by whatever the admission
// window has buffered (up to WaveSize), so the skeleton degrades to fine
// scatters under light load and amortises dispatch under pressure.
//
// Elastic membership costs the deal skeleton nothing extra: every wave is
// partitioned over the engine's membership at fire time (scatterWave reads
// Core.Live), so a worker admitted mid-stream joins the next wave with its
// delta-supplied weight and a removed worker is simply left out of it —
// the between-wave re-partition IS the skeleton's grow/shrink lever.

// StreamParams are the deal skeleton's own knobs; everything adaptive
// comes from engine.StreamOptions.
type StreamParams struct {
	// WaveSize caps how many tasks one decomposition wave scatters
	// (default: the admission window).
	WaveSize int
	// Alpha is the EWMA blend factor for between-wave re-weighting in
	// (0, 1]; 0 defaults to 0.5.
	Alpha float64
}

// stream inbox message kinds, multiplexed with gatherMsg payloads.
type streamMsg struct {
	kind smKind
	task platform.Task
	g    gatherMsg
}

type smKind int

const (
	smTask smKind = iota
	smEOF
	smGather
)

// Stream returns the deal skeleton's engine runner.
func Stream(params StreamParams) engine.Runner {
	return func(pf platform.Platform, c rt.Ctx, in rt.Chan, opts engine.StreamOptions) engine.StreamReport {
		workers := opts.Workers
		if len(workers) == 0 {
			workers = make([]int, pf.Size())
			for i := range workers {
				workers[i] = i
			}
		}
		window := opts.Window
		if window <= 0 {
			window = 2 * len(workers)
		}
		waveSize := params.WaveSize
		if waveSize <= 0 || waveSize > window {
			waveSize = window
		}
		alpha := params.Alpha
		if alpha <= 0 || alpha > 1 {
			alpha = 0.5
		}
		if opts.Weights == nil {
			opts.Weights = engine.NormalisedWeights(workers, nil)
		}

		co := engine.NewCore(pf, workers, engine.ModeRecalibrate, c.Now(), opts)
		runtime := pf.Runtime()
		inbox := runtime.NewChan("dmap.stream.inbox", window*2+len(workers)*2+8)
		intake := engine.NewIntake(runtime, c, "dmap.stream.credits", window)
		intake.Pump(c, "dmap.stream.pump", in,
			func(cc rt.Ctx, t platform.Task) { inbox.Send(cc, streamMsg{kind: smTask, task: t}) },
			func(cc rt.Ctx) { inbox.Send(cc, streamMsg{kind: smEOF}) },
		)
		// Wave workers gather onto the coordinator inbox; one relay channel
		// view keeps scatterWave shared with the batch map.
		gather := gatherChan{inbox: inbox}

		var (
			buffer   []platform.Task // admitted, not yet scattered
			inflight int             // admitted minus completed
			eof      bool
			waveSeq  int
			pending  int // block outcomes the active wave still owes
			outcomes []blockOutcome
		)

		fireWave := func() {
			for pending == 0 && len(buffer) > 0 && len(co.Live()) > 0 {
				take := len(buffer)
				if take > waveSize {
					take = waveSize
				}
				waveTasks := append([]platform.Task(nil), buffer[:take]...)
				buffer = buffer[0:copy(buffer, buffer[take:])]
				outcomes = outcomes[:0]
				pending = scatterWave(pf, c, co, gather, waveTasks, waveSeq, opts.Log)
				waveSeq++
			}
		}

		for {
			if eof && pending == 0 && len(buffer) == 0 {
				break
			}
			if len(co.Live()) == 0 && pending == 0 {
				break
			}
			v, ok := inbox.Recv(c)
			if !ok {
				break
			}
			// Drain after Recv, not before: an update arriving while the
			// coordinator is parked must apply before the event that woke
			// it fires a wave on the stale membership.
			co.DrainControl(c, opts.Control)
			m := v.(streamMsg)
			switch m.kind {
			case smTask:
				co.Rep.Admitted++
				inflight++
				if inflight > co.Rep.MaxInFlight {
					co.Rep.MaxInFlight = inflight
				}
				buffer = append(buffer, m.task)
				fireWave()
			case smEOF:
				eof = true
				fireWave()
			case smGather:
				if m.g.isOutcome {
					pending--
					outcomes = append(outcomes, m.g.out)
					if pending == 0 {
						// Wave complete: absorb crashes, then blend the wave's
						// observed throughput into the decomposition weights.
						for _, out := range outcomes {
							if lost := absorbLoss(pf, c, co, out); len(lost) > 0 {
								buffer = append(append([]platform.Task(nil), lost...), buffer...)
							}
						}
						co.SetWeights(streamReweight(co.Weights(), outcomes, alpha))
						fireWave()
					}
					continue
				}
				inflight--
				intake.Release(c)
				co.Complete(c, m.g.res)
			}
		}

		// Shut the pump down and recover any tasks it had already forwarded
		// (plus the unscattered buffer) as Remaining.
		intake.Close(c)
		for {
			v, ok, polled := inbox.TryRecv(c)
			if !polled || !ok {
				break
			}
			if m, isMsg := v.(streamMsg); isMsg && m.kind == smTask {
				buffer = append(buffer, m.task)
			}
		}
		co.Rep.Remaining = append([]platform.Task(nil), buffer...)
		return co.Finish()
	}
}

// gatherChan adapts the coordinator inbox to the rt.Chan surface
// scatterWave sends gatherMsg values on, wrapping each in a streamMsg.
type gatherChan struct {
	inbox rt.Chan
}

func (g gatherChan) Send(c rt.Ctx, v any) {
	g.inbox.Send(c, streamMsg{kind: smGather, g: v.(gatherMsg)})
}
func (g gatherChan) TrySend(c rt.Ctx, v any) bool {
	return g.inbox.TrySend(c, streamMsg{kind: smGather, g: v.(gatherMsg)})
}
func (g gatherChan) Recv(c rt.Ctx) (any, bool)          { return g.inbox.Recv(c) }
func (g gatherChan) TryRecv(c rt.Ctx) (any, bool, bool) { return g.inbox.TryRecv(c) }
func (g gatherChan) Close(c rt.Ctx)                     { g.inbox.Close(c) }
func (g gatherChan) Len() int                           { return g.inbox.Len() }
func (g gatherChan) Cap() int                           { return g.inbox.Cap() }

// streamReweight blends one wave's throughput-derived shares into the full
// weight map: the wave's workers redistribute their combined prior mass by
// observed rate (cost per second), EWMA-blended so one small wave cannot
// capsize the decomposition; workers outside the wave keep their shares.
func streamReweight(prev map[int]float64, outcomes []blockOutcome, alpha float64) map[int]float64 {
	rates := make(map[int]float64, len(outcomes))
	var totalRate, groupMass float64
	for _, o := range outcomes {
		groupMass += prev[o.worker]
		if o.busy > 0 && o.executed > 0 {
			r := o.executed / o.busy.Seconds()
			rates[o.worker] = r
			totalRate += r
		}
	}
	if totalRate <= 0 {
		return prev
	}
	next := make(map[int]float64, len(prev))
	var total float64
	for w, v := range prev {
		next[w] = v
	}
	for _, o := range outcomes {
		w := o.worker
		target := prev[w]
		if r, ok := rates[w]; ok {
			target = groupMass * r / totalRate
		}
		next[w] = alpha*target + (1-alpha)*prev[w]
	}
	for _, v := range next {
		total += v
	}
	if total <= 0 {
		return prev
	}
	for w := range next {
		next[w] /= total
	}
	return next
}
