package dmap

import (
	"testing"
	"testing/quick"
	"time"

	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/trace"
	"grasp/internal/vsim"
)

func gridPF(t *testing.T, specs []grid.NodeSpec) (*platform.GridPlatform, *rt.Sim) {
	t.Helper()
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: specs})
	if err != nil {
		t.Fatal(err)
	}
	return platform.NewGridPlatform(sim, g, 0, 1), sim
}

func fixedTasks(n int, cost float64) []platform.Task {
	tasks := make([]platform.Task, n)
	for i := range tasks {
		tasks[i] = platform.Task{ID: i, Cost: cost}
	}
	return tasks
}

func equalSpecs(n int, speed float64) []grid.NodeSpec {
	specs := make([]grid.NodeSpec, n)
	for i := range specs {
		specs[i] = grid.NodeSpec{BaseSpeed: speed}
	}
	return specs
}

func TestMapCompletesAllTasks(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(4, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(40, 1), Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 40 {
		t.Fatalf("results = %d, want 40", len(rep.Results))
	}
	if len(rep.Remaining) != 0 || rep.Breached {
		t.Errorf("clean run: remaining=%d breached=%v", len(rep.Remaining), rep.Breached)
	}
	seen := make(map[int]bool)
	for _, r := range rep.Results {
		if seen[r.Task.ID] {
			t.Fatalf("task %d executed twice", r.Task.ID)
		}
		seen[r.Task.ID] = true
	}
	if rep.WavesRun != 1 {
		t.Errorf("WavesRun = %d, want 1", rep.WavesRun)
	}
}

func TestMapScatterTrafficIsOneRoundPerWorker(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(8, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(800, 1), Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Scatters != 8 {
		t.Errorf("scatters = %d, want 8 (one block per worker)", rep.Scatters)
	}
}

func TestMapUniformWeightsSplitEvenly(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(4, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(100, 1), Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		if rep.TasksByWorker[w] != 25 {
			t.Errorf("worker %d got %d tasks, want 25", w, rep.TasksByWorker[w])
		}
	}
}

func TestMapWeightedDecomposition(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(2, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(100, 1), Options{
			Weights: map[int]float64{0: 3, 1: 1},
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.TasksByWorker[0] != 75 || rep.TasksByWorker[1] != 25 {
		t.Errorf("tasks by worker = %v, want 75/25", rep.TasksByWorker)
	}
}

func TestMapWeightedBeatsUniformOnHeterogeneousGrid(t *testing.T) {
	// Speeds 40 vs 10: the correct decomposition is 4:1.
	specs := []grid.NodeSpec{{BaseSpeed: 40}, {BaseSpeed: 10}}

	run := func(weights map[int]float64) time.Duration {
		pf, sim := gridPF(t, specs)
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, fixedTasks(100, 1), Options{Weights: weights})
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if len(rep.Results) != 100 {
			t.Fatalf("incomplete: %d", len(rep.Results))
		}
		return rep.Makespan
	}

	uniform := run(nil)
	weighted := run(map[int]float64{0: 4, 1: 1})
	if weighted >= uniform {
		t.Errorf("weighted %v should beat uniform %v", weighted, uniform)
	}
}

func TestMapWavesRebalanceWrongWeights(t *testing.T) {
	// Initial weights are inverted (slow node gets 4×); with waves the
	// throughput feedback must recover most of the loss.
	specs := []grid.NodeSpec{{BaseSpeed: 40}, {BaseSpeed: 10}}
	bad := map[int]float64{0: 1, 1: 4}

	run := func(waves int) Report {
		pf, sim := gridPF(t, specs)
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, fixedTasks(200, 1), Options{Weights: bad, Waves: waves, Alpha: 0.8})
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if len(rep.Results) != 200 {
			t.Fatalf("incomplete: %d", len(rep.Results))
		}
		return rep
	}

	oneWave := run(1)
	eightWaves := run(8)
	if eightWaves.Makespan >= oneWave.Makespan {
		t.Errorf("8 waves %v should beat 1 wave %v under inverted weights",
			eightWaves.Makespan, oneWave.Makespan)
	}
	if eightWaves.WavesRun != 8 {
		t.Errorf("WavesRun = %d, want 8", eightWaves.WavesRun)
	}
	// The final decomposition should have shifted the weight majority to the
	// fast worker.
	if fw := eightWaves.FinalWeights; fw[0] <= fw[1] {
		t.Errorf("final weights %v should favour the fast worker", fw)
	}
	// Imbalance in the last wave should be far below the first.
	first := eightWaves.WaveImbalance[0]
	last := eightWaves.WaveImbalance[len(eightWaves.WaveImbalance)-1]
	if last >= first {
		t.Errorf("imbalance should fall: first %.3f last %.3f", first, last)
	}
}

func TestMapDetectorStopsAfterWave(t *testing.T) {
	// A step of heavy external pressure begins after the first wave; the
	// detector must stop the map with the later waves unexecuted.
	specs := []grid.NodeSpec{
		{BaseSpeed: 10, Load: loadgen.NewStep(3*time.Second, 0, 0.9)},
		{BaseSpeed: 10, Load: loadgen.NewStep(3*time.Second, 0, 0.9)},
	}
	pf, sim := gridPF(t, specs)
	det := monitor.NewDetector(300 * time.Millisecond) // tasks take 0.1s idle
	det.Window = 2
	det.MinSamples = 2
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(400, 1), Options{Waves: 10, Detector: det})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !rep.Breached {
		t.Fatal("detector should have breached under 10× slowdown")
	}
	if len(rep.Remaining) == 0 {
		t.Error("breach should leave later waves unexecuted")
	}
	if len(rep.Results)+len(rep.Remaining) != 400 {
		t.Errorf("results %d + remaining %d != 400", len(rep.Results), len(rep.Remaining))
	}
	if rep.WavesRun >= 10 {
		t.Errorf("WavesRun = %d, should stop early", rep.WavesRun)
	}
}

func TestMapWorkerCrashRequeuesBlockTail(t *testing.T) {
	// Worker 1 dies at t=1s, mid-way through its block; its unfinished tasks
	// must be re-executed by the survivor on a later wave.
	specs := []grid.NodeSpec{
		{BaseSpeed: 10},
		{BaseSpeed: 10, FailAt: time.Second},
	}
	pf, sim := gridPF(t, specs)
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(100, 1), Options{Waves: 4})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 100 {
		t.Fatalf("all tasks must complete despite the crash: got %d", len(rep.Results))
	}
	if rep.Failures == 0 {
		t.Error("failures should be counted")
	}
	if len(rep.DeadWorkers) != 1 || rep.DeadWorkers[0] != 1 {
		t.Errorf("dead workers = %v, want [1]", rep.DeadWorkers)
	}
	seen := make(map[int]int)
	for _, r := range rep.Results {
		seen[r.Task.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("task %d completed %d times", id, n)
		}
	}
}

func TestMapCrashOnFinalWaveLeavesRemaining(t *testing.T) {
	// Single worker dies mid-run with Waves=1: the lost tail must surface in
	// Remaining, not vanish.
	specs := []grid.NodeSpec{{BaseSpeed: 10, FailAt: time.Second}}
	pf, sim := gridPF(t, specs)
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(50, 1), Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results)+len(rep.Remaining) != 50 {
		t.Errorf("results %d + remaining %d != 50", len(rep.Results), len(rep.Remaining))
	}
	if len(rep.Remaining) == 0 {
		t.Error("crash with no other worker must leave remaining tasks")
	}
}

func TestMapAllWorkersDead(t *testing.T) {
	specs := []grid.NodeSpec{
		{BaseSpeed: 10, FailAt: 500 * time.Millisecond},
		{BaseSpeed: 10, FailAt: 500 * time.Millisecond},
	}
	pf, sim := gridPF(t, specs)
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(100, 1), Options{Waves: 5})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results)+len(rep.Remaining) != 100 {
		t.Errorf("results %d + remaining %d != 100", len(rep.Results), len(rep.Remaining))
	}
	if len(rep.DeadWorkers) != 2 {
		t.Errorf("dead workers = %v, want both", rep.DeadWorkers)
	}
	if len(rep.Remaining) == 0 {
		t.Error("a fully dead platform must leave work undone")
	}
}

func TestMapEmptyTasks(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(2, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, nil, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 || len(rep.Remaining) != 0 || rep.WavesRun != 0 {
		t.Errorf("empty input: %+v", rep)
	}
}

func TestMapFewerTasksThanWorkers(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(8, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(3, 1), Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Errorf("results = %d, want 3", len(rep.Results))
	}
}

func TestMapWorkerSubset(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(4, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(20, 1), Options{Workers: []int{1, 3}})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.TasksByWorker[0] != 0 || rep.TasksByWorker[2] != 0 {
		t.Errorf("excluded workers got tasks: %v", rep.TasksByWorker)
	}
	if rep.TasksByWorker[1]+rep.TasksByWorker[3] != 20 {
		t.Errorf("tasks by worker = %v", rep.TasksByWorker)
	}
}

func TestMapTraceEvents(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(2, 10))
	log := trace.New()
	sim.Go("root", func(c rt.Ctx) {
		Run(pf, c, fixedTasks(10, 1), Options{Log: log})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	var dispatches, completes int
	for _, e := range log.Events() {
		switch e.Kind {
		case trace.KindDispatch:
			dispatches++
		case trace.KindComplete:
			completes++
		}
	}
	if dispatches != 10 || completes != 10 {
		t.Errorf("dispatches=%d completes=%d, want 10/10", dispatches, completes)
	}
}

func TestMapOnResultCallback(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(2, 10))
	var calls int
	sim.Go("root", func(c rt.Ctx) {
		Run(pf, c, fixedTasks(12, 1), Options{
			OnResult: func(platform.Result) { calls++ },
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 12 {
		t.Errorf("OnResult calls = %d, want 12", calls)
	}
}

func TestMapOnLocalPlatform(t *testing.T) {
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 4)
	tasks := make([]platform.Task, 16)
	for i := range tasks {
		i := i
		tasks[i] = platform.Task{ID: i, Fn: func() any { return i * i }}
	}
	var rep Report
	l.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, tasks, Options{})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 16 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Value.(int) != r.Task.ID*r.Task.ID {
			t.Errorf("task %d value = %v", r.Task.ID, r.Value)
		}
	}
}

func TestMapRunStaticMatchesSingleWave(t *testing.T) {
	specs := []grid.NodeSpec{{BaseSpeed: 20}, {BaseSpeed: 10}}
	w := map[int]float64{0: 2, 1: 1}

	makespan := func(f func(pf *platform.GridPlatform, c rt.Ctx) Report) time.Duration {
		pf, sim := gridPF(t, specs)
		var rep Report
		sim.Go("root", func(c rt.Ctx) { rep = f(pf, c) })
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}

	a := makespan(func(pf *platform.GridPlatform, c rt.Ctx) Report {
		return Run(pf, c, fixedTasks(60, 1), Options{Weights: w, Waves: 1})
	})
	b := makespan(func(pf *platform.GridPlatform, c rt.Ctx) Report {
		return RunStatic(pf, c, fixedTasks(60, 1), w, nil, nil)
	})
	if a != b {
		t.Errorf("RunStatic %v != single-wave Run %v", b, a)
	}
}

// TestMapConservationProperty: for arbitrary task counts, wave counts and
// weight skews, every task is either completed exactly once or returned in
// Remaining — never lost, never duplicated.
func TestMapConservationProperty(t *testing.T) {
	f := func(nTasks uint8, waves uint8, w0, w1 uint8, crash bool) bool {
		n := int(nTasks)%97 + 1
		wv := int(waves)%6 + 1
		specs := []grid.NodeSpec{{BaseSpeed: 10}, {BaseSpeed: 25}}
		if crash {
			specs[1].FailAt = 300 * time.Millisecond
		}
		env := vsim.New()
		sim := rt.NewSim(env)
		g, err := grid.New(env, grid.Config{Nodes: specs})
		if err != nil {
			return false
		}
		pf := platform.NewGridPlatform(sim, g, 0, 1)
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, fixedTasks(n, 1), Options{
				Waves:   wv,
				Weights: map[int]float64{0: float64(w0), 1: float64(w1)},
			})
		})
		if err := sim.Run(); err != nil {
			return false
		}
		seen := make(map[int]int)
		for _, r := range rep.Results {
			seen[r.Task.ID]++
		}
		for _, task := range rep.Remaining {
			seen[task.ID]++
		}
		if len(seen) != n {
			return false
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMapWaveSizeProperty: waveSize always returns a value in [1, n] for
// n > 0 and drains exactly n across wavesLeft successive calls.
func TestMapWaveSizeProperty(t *testing.T) {
	f := func(n uint16, waves uint8) bool {
		total := int(n)%5000 + 1
		wv := int(waves)%10 + 1
		remaining := total
		for left := wv; left >= 1 && remaining > 0; left-- {
			s := waveSize(remaining, left)
			if s < 1 || s > remaining {
				return false
			}
			remaining -= s
		}
		return remaining == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
