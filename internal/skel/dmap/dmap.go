// Package dmap implements the data-parallel map ("deal") algorithmic
// skeleton: the task population is decomposed up front into one contiguous
// block per worker and scattered in a single round-trip, in contrast to the
// farm's per-request dispatch.
//
// The skeleton's intrinsic properties, in GRASP terms, are
//
//   - minimal dispatch traffic: one scatter per worker per wave, so the
//     farmer round-trips the granularity experiments count collapse to P;
//   - coarse adaptation granularity: once a block is scattered it cannot be
//     rebalanced, so decomposition quality is decided by the weights the
//     calibration phase supplies.
//
// Adaptivity therefore happens *between* waves: Options.Waves splits the
// population into successive decomposition rounds, each wave's observed
// per-worker throughput re-weights the next (an EWMA blend), and the shared
// skel/engine contract supplies everything else — the calibrated weights,
// the monitor.Detector implementing Algorithm 2's threshold rule, and
// failure/retire handling. On a batch breach the remaining waves are
// returned to the caller so the GRASP core can recalibrate, exactly as the
// farm does; the streaming map (Stream) instead recalibrates its
// decomposition weights in place between waves.
//
// Workers that crash mid-block (grid.ErrNodeFailed) lose the rest of their
// block; the lost tasks are re-queued into the next wave (or returned in
// Remaining on the last one) and the worker is excluded from later waves.
package dmap

import (
	"fmt"
	"time"

	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/skel/engine"
	"grasp/internal/trace"
)

// Options configures a map run.
type Options struct {
	// Workers are the chosen worker indices (default: all platform workers).
	Workers []int
	// Weights are initial decomposition weights per worker, typically the
	// calibrated speed shares (default: uniform).
	Weights map[int]float64
	// Waves is the number of successive decomposition rounds (default 1:
	// a fully static single-scatter map).
	Waves int
	// Alpha is the EWMA blend factor for throughput-derived re-weighting in
	// (0, 1]; 0 defaults to 0.5. Higher values trust the latest wave more.
	Alpha float64
	// Detector observes normalised task times and, on breach, stops the map
	// after the current wave (optional).
	Detector *monitor.Detector
	// NormCost, when positive, normalises observed task times by task cost
	// before feeding the detector (see farm.Options.NormCost).
	NormCost float64
	// Log receives dispatch/complete/threshold events (optional).
	Log *trace.Log
	// OnResult is invoked at the master for every completed task (optional).
	OnResult func(platform.Result)
}

// Report is the outcome of a map run.
type Report struct {
	// Results holds one entry per executed task, in completion order.
	Results []platform.Result
	// Remaining are tasks never executed: the tail waves after a detector
	// breach plus any tasks lost to crashes on the final wave.
	Remaining []platform.Task
	// Breached reports whether the detector triggered.
	Breached bool
	// BreachStat is the statistic that crossed the threshold.
	BreachStat time.Duration
	// Makespan is the time from map start to the last completion.
	Makespan time.Duration
	// BusyByWorker sums execution time per worker index.
	BusyByWorker map[int]time.Duration
	// TasksByWorker counts tasks per worker index.
	TasksByWorker map[int]int
	// Scatters counts block dispatches (one per live worker per wave) — the
	// deal skeleton's whole dispatch traffic.
	Scatters int
	// WavesRun counts decomposition rounds actually executed.
	WavesRun int
	// WaveImbalance records, per executed wave, max/mean worker busy time
	// minus one (0 = perfectly balanced).
	WaveImbalance []float64
	// FinalWeights are the decomposition weights after the last executed
	// wave's re-weighting (nil when a single wave ran with no feedback).
	FinalWeights map[int]float64
	// Failures counts executions lost to worker crashes.
	Failures int
	// DeadWorkers lists workers that crashed during the run, in detection
	// order.
	DeadWorkers []int
}

// blockOutcome is what one worker reports back after processing its block.
type blockOutcome struct {
	worker   int
	busy     time.Duration
	done     int
	lost     []platform.Task // tasks not executed because the worker crashed
	executed float64         // summed cost of completed tasks
}

// gatherMsg multiplexes per-task results and end-of-block outcomes onto the
// master's gather channel.
type gatherMsg struct {
	isOutcome bool
	res       platform.Result
	out       blockOutcome
}

// scatterWave spawns one block process per live worker for the wave's
// tasks, partitioned by the engine's current weights, and returns how many
// outcomes the caller must gather. Shared by the batch and streaming maps.
func scatterWave(pf platform.Platform, c rt.Ctx, co *engine.Core, gather rt.Chan, waveTasks []platform.Task, wave int, log *trace.Log) int {
	live := co.Live()
	if len(live) == 0 {
		return 0
	}
	part := sched.WeightedBlocks(len(waveTasks), co.WeightSliceFor(live))
	spawned := 0
	for i, w := range live {
		w := w
		block := indexTasks(waveTasks, part[i])
		if len(block) == 0 {
			continue
		}
		spawned++
		co.Rep.Requests++
		if log != nil {
			for _, t := range block {
				log.Append(trace.Event{
					At: c.Now(), Kind: trace.KindDispatch,
					Node: pf.WorkerName(w), Task: t.ID,
				})
			}
		}
		c.Go(fmt.Sprintf("dmap.worker.%s.w%d", pf.WorkerName(w), wave), func(cc rt.Ctx) {
			out := blockOutcome{worker: w}
			blockStart := cc.Now()
			for bi, t := range block {
				res := pf.Exec(cc, w, t)
				if res.Failed() {
					// The rest of the block dies with the node. The task
					// whose execution failed is lost work too.
					out.lost = append(out.lost, block[bi:]...)
					break
				}
				out.done++
				out.executed += t.Cost
				gather.Send(cc, gatherMsg{res: res})
			}
			out.busy = cc.Now() - blockStart
			gather.Send(cc, gatherMsg{isOutcome: true, out: out})
		})
	}
	return spawned
}

// absorbLoss books a crashed worker's block outcome: the lost executions
// are counted, the worker retired. It returns the lost tasks for the
// caller to re-queue.
func absorbLoss(pf platform.Platform, c rt.Ctx, co *engine.Core, out blockOutcome) []platform.Task {
	if len(out.lost) == 0 {
		return nil
	}
	co.Rep.Failures += len(out.lost)
	co.Retire(c, out.worker, fmt.Sprintf("worker %s failed; %d tasks re-queued",
		pf.WorkerName(out.worker), len(out.lost)))
	return out.lost
}

// Run executes tasks with block decomposition from within process c,
// blocking until all waves complete, the detector stops the map, or every
// worker has died.
func Run(pf platform.Platform, c rt.Ctx, tasks []platform.Task, opts Options) Report {
	workers := opts.Workers
	if len(workers) == 0 {
		workers = make([]int, pf.Size())
		for i := range workers {
			workers[i] = i
		}
	}
	waves := opts.Waves
	if waves < 1 {
		waves = 1
	}
	alpha := opts.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}

	co := engine.NewCore(pf, workers, engine.ModeStop, c.Now(), engine.StreamOptions{
		Weights:  engine.NormalisedWeights(workers, opts.Weights),
		Detector: opts.Detector,
		NormCost: opts.NormCost,
		Log:      opts.Log,
		OnResult: opts.OnResult,
	})
	rep := Report{}
	runtime := pf.Runtime()

	queue := tasks
	for wave := 0; wave < waves; wave++ {
		if len(queue) == 0 || len(co.Live()) == 0 {
			break
		}
		// The wave takes an even share of what remains, so later waves can
		// still rebalance; the final wave drains the queue.
		take := waveSize(len(queue), waves-wave)
		waveTasks := queue[:take]
		queue = queue[take:]

		gather := runtime.NewChan(fmt.Sprintf("dmap.gather.%d", wave), len(workers)*2)
		spawned := scatterWave(pf, c, co, gather, waveTasks, wave, opts.Log)
		rep.Scatters += spawned

		// Gather: per-task results stream in; the wave ends when every
		// scattered block's outcome is back.
		outcomes := make([]blockOutcome, 0, spawned)
		for len(outcomes) < spawned {
			v, ok := gather.Recv(c)
			if !ok {
				break
			}
			m := v.(gatherMsg)
			if m.isOutcome {
				outcomes = append(outcomes, m.out)
				continue
			}
			co.Complete(c, m.res)
		}
		rep.WavesRun++
		rep.WaveImbalance = append(rep.WaveImbalance, imbalance(outcomes))

		// Crashes: requeue lost tasks at the head of the next wave and
		// retire the dead workers.
		for _, out := range outcomes {
			if lost := absorbLoss(pf, c, co, out); len(lost) > 0 {
				queue = append(append([]platform.Task(nil), lost...), queue...)
			}
		}

		if co.Rep.Breached {
			if opts.Log != nil {
				opts.Log.Append(trace.Event{
					At: c.Now(), Kind: trace.KindNote,
					Msg: fmt.Sprintf("map stop after wave %d", wave),
				})
			}
			break
		}
		// Re-weight the next wave by observed throughput: the per-worker rate
		// (cost per second) this wave, EWMA-blended into the prior weight so
		// one noisy wave cannot capsize the decomposition.
		if wave < waves-1 {
			co.SetWeights(reweight(co.Weights(), outcomes, alpha))
			rep.FinalWeights = co.Weights()
		}
	}

	erep := co.Finish()
	rep.Results = erep.Results
	rep.Remaining = queue
	rep.Breached = erep.Breached
	rep.BreachStat = erep.BreachStat
	rep.Makespan = erep.Makespan
	rep.BusyByWorker = erep.BusyByWorker
	rep.TasksByWorker = erep.TasksByWorker
	rep.Failures = erep.Failures
	rep.DeadWorkers = erep.DeadWorkers
	return rep
}

// RunStatic executes tasks as a single-wave map with the given weights: the
// non-adaptive deal baseline (equivalent to Run with Waves=1 and no
// detector, provided for symmetry with farm.RunStatic).
func RunStatic(pf platform.Platform, c rt.Ctx, tasks []platform.Task, weights map[int]float64, workers []int, log *trace.Log) Report {
	return Run(pf, c, tasks, Options{
		Workers: workers,
		Weights: weights,
		Waves:   1,
		Log:     log,
	})
}

// waveSize returns how many tasks the next wave takes when wavesLeft rounds
// (including this one) must drain n tasks: the ceiling share, so the final
// wave is never larger than the others.
func waveSize(n, wavesLeft int) int {
	if wavesLeft <= 1 {
		return n
	}
	size := (n + wavesLeft - 1) / wavesLeft
	if size < 1 {
		size = 1
	}
	if size > n {
		size = n
	}
	return size
}

// indexTasks selects tasks by index list.
func indexTasks(tasks []platform.Task, idxs []int) []platform.Task {
	out := make([]platform.Task, len(idxs))
	for i, ti := range idxs {
		out[i] = tasks[ti]
	}
	return out
}

// imbalance computes max/mean busy − 1 over the wave's outcomes.
func imbalance(outcomes []blockOutcome) float64 {
	if len(outcomes) == 0 {
		return 0
	}
	var sum, max time.Duration
	for _, o := range outcomes {
		sum += o.busy
		if o.busy > max {
			max = o.busy
		}
	}
	mean := float64(sum) / float64(len(outcomes))
	if mean <= 0 {
		return 0
	}
	return float64(max)/mean - 1
}

// reweight blends throughput-derived weights into the current ones. Workers
// that executed nothing this wave (empty block, or died instantly) keep
// their prior weight scaled into the new normalisation; dead workers are
// naturally excluded on the next wave by the engine's retire list.
func reweight(prev map[int]float64, outcomes []blockOutcome, alpha float64) map[int]float64 {
	rates := make(map[int]float64, len(outcomes))
	var totalRate float64
	for _, o := range outcomes {
		if o.busy > 0 && o.executed > 0 {
			r := o.executed / o.busy.Seconds()
			rates[o.worker] = r
			totalRate += r
		}
	}
	next := make(map[int]float64, len(prev))
	var total float64
	for _, o := range outcomes {
		w := o.worker
		blended := prev[w]
		if totalRate > 0 {
			if r, ok := rates[w]; ok {
				blended = alpha*(r/totalRate) + (1-alpha)*prev[w]
			} else {
				blended = (1 - alpha) * prev[w]
			}
		}
		next[w] = blended
		total += blended
	}
	if total <= 0 {
		return engine.NormalisedWeights(keys(next), nil)
	}
	for w := range next {
		next[w] /= total
	}
	return next
}

// keys lists a weight map's workers.
func keys(w map[int]float64) []int {
	out := make([]int, 0, len(w))
	for k := range w {
		out = append(out, k)
	}
	return out
}
