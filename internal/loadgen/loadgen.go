// Package loadgen models the external pressure a non-dedicated grid node
// experiences from other users' jobs: the defining characteristic of the
// computational-grid setting the paper targets.
//
// A Trace is a piecewise-constant function of virtual time returning the
// external load fraction ℓ(t) ∈ [0, 1): the fraction of the node's capacity
// consumed by competing work, so the effective speed of a node is
// base·(1−ℓ(t)). Piecewise-constant traces can be integrated exactly, which
// lets the grid model compute task completion times precisely even when
// pressure changes mid-task (see grid.Node).
//
// All stochastic generators take explicit seeds; identical seeds reproduce
// identical traces.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// MaxLoad is the ceiling applied to every trace value. A load of exactly 1
// would stall a node forever; clamping just below keeps progress guarantees
// while modelling near-total contention.
const MaxLoad = 0.98

// Trace is an external-load profile: a piecewise-constant ℓ(t).
type Trace interface {
	// At returns the load fraction in [0, MaxLoad] at virtual time t.
	At(t time.Duration) float64
	// NextChange returns the earliest time strictly after t at which the
	// load value changes, or ok=false if the trace is constant forever
	// after t.
	NextChange(t time.Duration) (time.Duration, bool)
}

// clamp bounds a load value into [0, MaxLoad].
func clamp(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > MaxLoad {
		return MaxLoad
	}
	return x
}

// Constant is a trace with a fixed load level.
type Constant struct{ Level float64 }

// NewConstant returns a constant trace clamped into [0, MaxLoad].
func NewConstant(level float64) Constant { return Constant{Level: clamp(level)} }

// At implements Trace.
func (c Constant) At(time.Duration) float64 { return clamp(c.Level) }

// NextChange implements Trace.
func (c Constant) NextChange(time.Duration) (time.Duration, bool) { return 0, false }

// Step is a trace that jumps from Before to After at time At.
type Step struct {
	Time   time.Duration
	Before float64
	After  float64
}

// NewStep returns a step trace.
func NewStep(at time.Duration, before, after float64) Step {
	return Step{Time: at, Before: clamp(before), After: clamp(after)}
}

// At implements Trace.
func (s Step) At(t time.Duration) float64 {
	if t < s.Time {
		return clamp(s.Before)
	}
	return clamp(s.After)
}

// NextChange implements Trace.
func (s Step) NextChange(t time.Duration) (time.Duration, bool) {
	if t < s.Time && clamp(s.Before) != clamp(s.After) {
		return s.Time, true
	}
	return 0, false
}

// Segment is one piece of a piecewise trace: Load holds from Start until the
// next segment's Start.
type Segment struct {
	Start time.Duration
	Load  float64
}

// Piecewise is an arbitrary piecewise-constant trace assembled from
// segments. The value before the first segment is the first segment's load.
type Piecewise struct {
	segs []Segment
}

// NewPiecewise builds a trace from segments, which are sorted by start time.
// Adjacent segments with equal load are merged. An empty segment list yields
// a zero-load trace.
func NewPiecewise(segs []Segment) *Piecewise {
	cp := append([]Segment(nil), segs...)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Start < cp[j].Start })
	var merged []Segment
	for _, s := range cp {
		s.Load = clamp(s.Load)
		if n := len(merged); n > 0 {
			if merged[n-1].Start == s.Start {
				// Later spec at the same instant wins.
				merged[n-1].Load = s.Load
				continue
			}
			if merged[n-1].Load == s.Load {
				continue
			}
		}
		merged = append(merged, s)
	}
	return &Piecewise{segs: merged}
}

// At implements Trace.
func (pw *Piecewise) At(t time.Duration) float64 {
	if len(pw.segs) == 0 {
		return 0
	}
	// Find the last segment with Start <= t.
	i := sort.Search(len(pw.segs), func(i int) bool { return pw.segs[i].Start > t })
	if i == 0 {
		return pw.segs[0].Load
	}
	return pw.segs[i-1].Load
}

// NextChange implements Trace.
func (pw *Piecewise) NextChange(t time.Duration) (time.Duration, bool) {
	cur := pw.At(t)
	i := sort.Search(len(pw.segs), func(i int) bool { return pw.segs[i].Start > t })
	for ; i < len(pw.segs); i++ {
		if pw.segs[i].Load != cur {
			return pw.segs[i].Start, true
		}
		cur = pw.segs[i].Load
	}
	return 0, false
}

// Segments returns a copy of the normalised segment list.
func (pw *Piecewise) Segments() []Segment { return append([]Segment(nil), pw.segs...) }

// SquareWave alternates between Low and High, spending HighFor at High then
// LowFor at Low, starting at High from Phase onward (Low before Phase).
type SquareWave struct {
	Low, High       float64
	HighFor, LowFor time.Duration
	Phase           time.Duration
}

// NewSquareWave builds a square-wave trace; non-positive durations are
// clamped to 1ns to avoid a zero-length period.
func NewSquareWave(low, high float64, highFor, lowFor, phase time.Duration) SquareWave {
	if highFor <= 0 {
		highFor = time.Nanosecond
	}
	if lowFor <= 0 {
		lowFor = time.Nanosecond
	}
	return SquareWave{Low: clamp(low), High: clamp(high), HighFor: highFor, LowFor: lowFor, Phase: phase}
}

// At implements Trace.
func (w SquareWave) At(t time.Duration) float64 {
	if t < w.Phase {
		return clamp(w.Low)
	}
	period := w.HighFor + w.LowFor
	off := (t - w.Phase) % period
	if off < w.HighFor {
		return clamp(w.High)
	}
	return clamp(w.Low)
}

// NextChange implements Trace.
func (w SquareWave) NextChange(t time.Duration) (time.Duration, bool) {
	if clamp(w.Low) == clamp(w.High) {
		return 0, false
	}
	if t < w.Phase {
		return w.Phase, true
	}
	period := w.HighFor + w.LowFor
	off := (t - w.Phase) % period
	base := t - off
	if off < w.HighFor {
		return base + w.HighFor, true
	}
	return base + period, true
}

// Sine approximates a sinusoidal load by sampling it into piecewise-constant
// steps: load(t) = Mid + Amp·sin(2π·t/Period), quantised every Period/Steps.
func Sine(mid, amp float64, period time.Duration, steps int, horizon time.Duration) *Piecewise {
	if steps < 2 {
		steps = 2
	}
	if period <= 0 {
		period = time.Second
	}
	dt := period / time.Duration(steps)
	if dt <= 0 {
		dt = time.Nanosecond
	}
	var segs []Segment
	for t := time.Duration(0); t <= horizon; t += dt {
		phase := 2 * math.Pi * float64(t%period) / float64(period)
		segs = append(segs, Segment{Start: t, Load: clamp(mid + amp*math.Sin(phase))})
	}
	return NewPiecewise(segs)
}

// RandomWalk generates a seeded random-walk trace: every interval the load
// moves by a uniform step in [−step, +step], reflected into [0, MaxLoad].
func RandomWalk(seed int64, start, step float64, interval, horizon time.Duration) *Piecewise {
	if interval <= 0 {
		interval = time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	level := clamp(start)
	var segs []Segment
	for t := time.Duration(0); t <= horizon; t += interval {
		segs = append(segs, Segment{Start: t, Load: level})
		level += (rng.Float64()*2 - 1) * step
		// Reflect at the boundaries.
		if level < 0 {
			level = -level
		}
		if level > MaxLoad {
			level = 2*MaxLoad - level
		}
		level = clamp(level)
	}
	return NewPiecewise(segs)
}

// MarkovOnOff generates a seeded two-state (idle/busy) trace with
// exponentially distributed dwell times, the classic model of interactive
// owner activity on non-dedicated workstations.
func MarkovOnOff(seed int64, idleLoad, busyLoad float64, meanIdle, meanBusy, horizon time.Duration) *Piecewise {
	if meanIdle <= 0 {
		meanIdle = time.Second
	}
	if meanBusy <= 0 {
		meanBusy = time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	var segs []Segment
	t := time.Duration(0)
	busy := false
	for t <= horizon {
		load := idleLoad
		mean := meanIdle
		if busy {
			load = busyLoad
			mean = meanBusy
		}
		segs = append(segs, Segment{Start: t, Load: clamp(load)})
		dwell := time.Duration(rng.ExpFloat64() * float64(mean))
		if dwell <= 0 {
			dwell = time.Nanosecond
		}
		t += dwell
		busy = !busy
	}
	return NewPiecewise(segs)
}

// Spikes generates a trace that is Base except for n equally spaced bursts
// of the given height and width across the horizon.
func Spikes(base, height float64, n int, width, horizon time.Duration) *Piecewise {
	segs := []Segment{{Start: 0, Load: clamp(base)}}
	if n <= 0 || horizon <= 0 {
		return NewPiecewise(segs)
	}
	gap := horizon / time.Duration(n+1)
	for i := 1; i <= n; i++ {
		at := gap * time.Duration(i)
		segs = append(segs, Segment{Start: at, Load: clamp(base + height)})
		segs = append(segs, Segment{Start: at + width, Load: clamp(base)})
	}
	return NewPiecewise(segs)
}

// Scale wraps a trace, multiplying its value by factor (then clamping).
type Scale struct {
	T      Trace
	Factor float64
}

// At implements Trace.
func (s Scale) At(t time.Duration) float64 { return clamp(s.T.At(t) * s.Factor) }

// NextChange implements Trace.
func (s Scale) NextChange(t time.Duration) (time.Duration, bool) { return s.T.NextChange(t) }

// Shift wraps a trace, delaying it by Delay (load before the delay is the
// wrapped trace's value at time zero).
type Shift struct {
	T     Trace
	Delay time.Duration
}

// At implements Trace.
func (s Shift) At(t time.Duration) float64 {
	if t < s.Delay {
		return s.T.At(0)
	}
	return s.T.At(t - s.Delay)
}

// NextChange implements Trace.
func (s Shift) NextChange(t time.Duration) (time.Duration, bool) {
	if t < s.Delay {
		// First change is either at Delay (if the underlying value differs)
		// or the underlying trace's first change, shifted.
		if s.T.At(0) != s.At(s.Delay) {
			return s.Delay, true
		}
		nc, ok := s.T.NextChange(0)
		if !ok {
			return 0, false
		}
		return nc + s.Delay, true
	}
	nc, ok := s.T.NextChange(t - s.Delay)
	if !ok {
		return 0, false
	}
	return nc + s.Delay, true
}

// Describe renders a short human-readable summary of a trace for logs.
func Describe(tr Trace) string {
	switch v := tr.(type) {
	case Constant:
		return fmt.Sprintf("constant(%.2f)", v.Level)
	case Step:
		return fmt.Sprintf("step(%.2f→%.2f@%v)", v.Before, v.After, v.Time)
	case SquareWave:
		return fmt.Sprintf("square(%.2f/%.2f %v/%v)", v.Low, v.High, v.HighFor, v.LowFor)
	case *Piecewise:
		return fmt.Sprintf("piecewise(%d segs)", len(v.segs))
	default:
		return fmt.Sprintf("%T", tr)
	}
}
