package loadgen_test

import (
	"fmt"
	"time"

	"grasp/internal/loadgen"
)

// ExampleNewSquareWave models a periodically shared node: 80% external
// load for 10 s, idle for 10 s, repeating.
func ExampleNewSquareWave() {
	w := loadgen.NewSquareWave(0, 0.8, 10*time.Second, 10*time.Second, 0)
	for _, t := range []time.Duration{0, 5 * time.Second, 15 * time.Second, 25 * time.Second} {
		fmt.Printf("t=%v load=%.1f\n", t, w.At(t))
	}
	// Output:
	// t=0s load=0.8
	// t=5s load=0.8
	// t=15s load=0.0
	// t=25s load=0.8
}

// ExampleNewPiecewise builds the staircase traces the experiments ramp
// pressure with; NextChange drives the simulator's exact integration.
func ExampleNewPiecewise() {
	tr := loadgen.NewPiecewise([]loadgen.Segment{
		{Start: 0, Load: 0},
		{Start: 10 * time.Second, Load: 0.3},
		{Start: 20 * time.Second, Load: 0.9},
	})
	next, ok := tr.NextChange(12 * time.Second)
	fmt.Printf("load(12s)=%.1f next change at %v (%v)\n", tr.At(12*time.Second), next, ok)
	// Output:
	// load(12s)=0.3 next change at 20s (true)
}
