package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestRampShape(t *testing.T) {
	r := Ramp(0.1, 0.9, time.Second, 2*time.Second, 8)
	if got := r.At(0); got != 0.1 {
		t.Errorf("At(0) = %v, want the from level", got)
	}
	if got := r.At(500 * time.Millisecond); got != 0.1 {
		t.Errorf("At(0.5s) = %v, want the from level before start", got)
	}
	if got := r.At(10 * time.Second); got != 0.9 {
		t.Errorf("At(10s) = %v, want the to level held after the ramp", got)
	}
	prev := -1.0
	for at := time.Duration(0); at <= 4*time.Second; at += 50 * time.Millisecond {
		v := r.At(at)
		if v < prev {
			t.Fatalf("ramp decreased at %v: %v after %v", at, v, prev)
		}
		prev = v
	}
}

func TestDegradationScheduleDeterministicWithOneVictim(t *testing.T) {
	const n = 5
	horizon := 10 * time.Second
	a := DegradationSchedule(7, n, horizon)
	b := DegradationSchedule(7, n, horizon)
	other := DegradationSchedule(8, n, horizon)
	if len(a) != n {
		t.Fatalf("got %d traces, want %d", len(a), n)
	}
	victims, sameAsOther := 0, true
	for i := range a {
		for at := time.Duration(0); at <= horizon; at += horizon / 16 {
			if a[i].At(at) != b[i].At(at) {
				t.Fatalf("node %d diverges at %v under the same seed", i, at)
			}
			if a[i].At(at) != other[i].At(at) {
				sameAsOther = false
			}
		}
		// The victim's ramp holds heavy contention at the horizon; the
		// background walks stay well below it.
		if a[i].At(horizon) >= 0.75 {
			victims++
		}
	}
	if victims != 1 {
		t.Errorf("%d nodes at heavy load at the horizon, want exactly the one victim", victims)
	}
	if sameAsOther {
		t.Error("seeds 7 and 8 produced identical schedules")
	}
}

// planCovers asserts a push plan covers [0, n) in order with no overlap,
// and that its first step never pauses.
func planCovers(t *testing.T, steps []pushStep, n int, profile string) {
	t.Helper()
	if len(steps) == 0 {
		t.Fatalf("%s: empty plan for %d tasks", profile, n)
	}
	if steps[0].pause != 0 {
		t.Errorf("%s: first push pauses %v, want an immediate start", profile, steps[0].pause)
	}
	next := 0
	for _, s := range steps {
		if s.from != next || s.to <= s.from {
			t.Fatalf("%s: step [%d,%d) after cursor %d — gap, overlap, or empty", profile, s.from, s.to, next)
		}
		next = s.to
	}
	if next != n {
		t.Errorf("%s: plan ends at %d, want %d", profile, next, n)
	}
}

func TestPlanPushesCoversEveryProfile(t *testing.T) {
	for _, profile := range []string{ProfileSteady, ProfileFlashCrowd, ProfileSustainedOverload} {
		d := Driver{TasksPerJob: 103, Batch: 10, PollEvery: time.Millisecond, Profile: profile}
		planCovers(t, d.planPushes(), 103, profile)
	}
	// Degenerate sizes must not wedge the planner.
	for _, n := range []int{1, 4, 10} {
		d := Driver{TasksPerJob: n, Batch: 10, PollEvery: time.Millisecond, Profile: ProfileFlashCrowd}
		planCovers(t, d.planPushes(), n, fmt.Sprintf("flash-crowd/n=%d", n))
	}
}

// captureServer is a minimal daemon stub: it admits everything, records
// every pushed task spec in arrival order, and reports each job done once
// closed.
func captureServer(t *testing.T) (*httptest.Server, func() []string) {
	t.Helper()
	var (
		mu     sync.Mutex
		pushed []string
		closed = map[string]bool{}
		count  = map[string]int{}
	)
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("/api/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Tasks []struct {
				ID      int   `json:"id"`
				SleepUS int64 `json:"sleep_us"`
			} `json:"tasks"`
		}
		switch {
		case r.Method == http.MethodPost && len(r.URL.Path) > 6 && r.URL.Path[len(r.URL.Path)-6:] == "/tasks":
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
				t.Errorf("bad task push: %v", err)
			}
			mu.Lock()
			for _, ts := range body.Tasks {
				pushed = append(pushed, fmt.Sprintf("%d:%d", ts.ID, ts.SleepUS))
			}
			count[r.URL.Path] += len(body.Tasks)
			mu.Unlock()
			w.WriteHeader(http.StatusAccepted)
		case r.Method == http.MethodPost: // close
			mu.Lock()
			closed[r.URL.Path] = true
			mu.Unlock()
		case r.URL.Query().Get("after") != "":
			name := r.URL.Path[len("/api/v1/jobs/") : len(r.URL.Path)-len("/results")]
			mu.Lock()
			n := count["/api/v1/jobs/"+name+"/tasks"]
			mu.Unlock()
			results := make([]map[string]any, n)
			for i := range results {
				results[i] = map[string]any{"id": i}
			}
			json.NewEncoder(w).Encode(map[string]any{"results": results, "next": n, "state": "done"})
		default: // status
			json.NewEncoder(w).Encode(map[string]any{})
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), pushed...)
	}
}

// TestSeedReplaysByteIdenticallyUnderEveryProfile pins the determinism
// contract adversarial replays depend on: for one Seed, the sequence of
// (id, sleep_us) task specs on the wire is identical no matter how the
// profile batches or paces the pushes — and a different Seed changes it.
func TestSeedReplaysByteIdenticallyUnderEveryProfile(t *testing.T) {
	run := func(seed int64, profile string) []string {
		srv, pushedSpecs := captureServer(t)
		summary := Driver{
			BaseURL:     srv.URL,
			Jobs:        1,
			TasksPerJob: 37,
			Batch:       5,
			SleepUS:     1000,
			PollEvery:   time.Millisecond,
			Timeout:     10 * time.Second,
			Seed:        seed,
			Profile:     profile,
		}.Run()
		if len(summary.Errors) > 0 {
			t.Fatalf("drive errors under %q: %v", profile, summary.Errors)
		}
		return pushedSpecs()
	}

	baseline := run(7, ProfileSteady)
	if len(baseline) != 37 {
		t.Fatalf("steady pushed %d specs, want 37", len(baseline))
	}
	for _, profile := range []string{ProfileFlashCrowd, ProfileSustainedOverload} {
		got := run(7, profile)
		if len(got) != len(baseline) {
			t.Fatalf("%s pushed %d specs, steady pushed %d", profile, len(got), len(baseline))
		}
		for i := range got {
			if got[i] != baseline[i] {
				t.Fatalf("%s diverges from steady at spec %d: %s vs %s", profile, i, got[i], baseline[i])
			}
		}
	}
	if reseeded := run(8, ProfileSteady); fmt.Sprint(reseeded) == fmt.Sprint(baseline) {
		t.Error("seeds 7 and 8 produced identical task streams")
	}
}
