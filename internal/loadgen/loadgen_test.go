package loadgen

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestConstant(t *testing.T) {
	c := NewConstant(0.5)
	if c.At(0) != 0.5 || c.At(time.Hour) != 0.5 {
		t.Error("constant trace not constant")
	}
	if _, ok := c.NextChange(0); ok {
		t.Error("constant trace should never change")
	}
}

func TestClamping(t *testing.T) {
	if NewConstant(-1).At(0) != 0 {
		t.Error("negative load not clamped to 0")
	}
	if NewConstant(2).At(0) != MaxLoad {
		t.Error("load > MaxLoad not clamped")
	}
}

func TestStep(t *testing.T) {
	s := NewStep(10*time.Second, 0.1, 0.7)
	if s.At(0) != 0.1 || s.At(9*time.Second) != 0.1 {
		t.Error("before step wrong")
	}
	if s.At(10*time.Second) != 0.7 || s.At(time.Hour) != 0.7 {
		t.Error("after step wrong")
	}
	nc, ok := s.NextChange(0)
	if !ok || nc != 10*time.Second {
		t.Errorf("NextChange = %v %v", nc, ok)
	}
	if _, ok := s.NextChange(10 * time.Second); ok {
		t.Error("no change after the step")
	}
}

func TestStepDegenerate(t *testing.T) {
	s := NewStep(5*time.Second, 0.3, 0.3)
	if _, ok := s.NextChange(0); ok {
		t.Error("equal before/after step should report no change")
	}
}

func TestPiecewise(t *testing.T) {
	pw := NewPiecewise([]Segment{
		{Start: 0, Load: 0.1},
		{Start: 10 * time.Second, Load: 0.5},
		{Start: 20 * time.Second, Load: 0.2},
	})
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 0.1}, {5 * time.Second, 0.1}, {10 * time.Second, 0.5},
		{15 * time.Second, 0.5}, {20 * time.Second, 0.2}, {time.Hour, 0.2},
	}
	for _, c := range cases {
		if got := pw.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	nc, ok := pw.NextChange(3 * time.Second)
	if !ok || nc != 10*time.Second {
		t.Errorf("NextChange = %v %v", nc, ok)
	}
	nc, ok = pw.NextChange(10 * time.Second)
	if !ok || nc != 20*time.Second {
		t.Errorf("NextChange = %v %v", nc, ok)
	}
	if _, ok := pw.NextChange(25 * time.Second); ok {
		t.Error("should be constant at tail")
	}
}

func TestPiecewiseNormalisation(t *testing.T) {
	// Unsorted input, duplicate starts, equal adjacent loads.
	pw := NewPiecewise([]Segment{
		{Start: 20 * time.Second, Load: 0.2},
		{Start: 0, Load: 0.1},
		{Start: 0, Load: 0.3},                // later spec wins
		{Start: 10 * time.Second, Load: 0.3}, // merges with previous value
	})
	segs := pw.Segments()
	if len(segs) != 2 {
		t.Fatalf("normalised to %d segments: %v", len(segs), segs)
	}
	if segs[0].Load != 0.3 || segs[1].Load != 0.2 {
		t.Errorf("segments = %v", segs)
	}
}

func TestPiecewiseEmpty(t *testing.T) {
	pw := NewPiecewise(nil)
	if pw.At(time.Hour) != 0 {
		t.Error("empty piecewise should be zero load")
	}
	if _, ok := pw.NextChange(0); ok {
		t.Error("empty piecewise should never change")
	}
}

func TestPiecewiseBeforeFirstSegment(t *testing.T) {
	pw := NewPiecewise([]Segment{{Start: 10 * time.Second, Load: 0.4}})
	if pw.At(0) != 0.4 {
		t.Error("value before first segment should be first segment's load")
	}
}

func TestSquareWave(t *testing.T) {
	w := NewSquareWave(0.1, 0.8, 2*time.Second, 3*time.Second, 0)
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 0.8}, {time.Second, 0.8}, {2 * time.Second, 0.1},
		{4 * time.Second, 0.1}, {5 * time.Second, 0.8}, {7 * time.Second, 0.1},
	}
	for _, c := range cases {
		if got := w.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSquareWavePhase(t *testing.T) {
	w := NewSquareWave(0, 0.5, time.Second, time.Second, 10*time.Second)
	if w.At(5*time.Second) != 0 {
		t.Error("before phase should be low")
	}
	if w.At(10*time.Second) != 0.5 {
		t.Error("at phase should be high")
	}
	nc, ok := w.NextChange(0)
	if !ok || nc != 10*time.Second {
		t.Errorf("NextChange = %v %v", nc, ok)
	}
}

func TestSquareWaveNextChangeConsistent(t *testing.T) {
	w := NewSquareWave(0.1, 0.9, 2*time.Second, 3*time.Second, time.Second)
	// Walking NextChange must visit strictly increasing times where the
	// value actually changes.
	cur := time.Duration(0)
	for i := 0; i < 20; i++ {
		nc, ok := w.NextChange(cur)
		if !ok {
			t.Fatal("square wave should change forever")
		}
		if nc <= cur {
			t.Fatalf("NextChange not increasing: %v -> %v", cur, nc)
		}
		if w.At(nc) == w.At(cur) {
			t.Fatalf("no actual change at %v", nc)
		}
		cur = nc
	}
}

func TestSquareWaveDegenerate(t *testing.T) {
	w := NewSquareWave(0.5, 0.5, time.Second, time.Second, 0)
	if _, ok := w.NextChange(0); ok {
		t.Error("equal low/high wave should never change")
	}
}

func TestSine(t *testing.T) {
	pw := Sine(0.5, 0.4, 10*time.Second, 20, 30*time.Second)
	// Mean over a full period should be near mid.
	var sum float64
	n := 0
	for ts := time.Duration(0); ts < 10*time.Second; ts += 100 * time.Millisecond {
		sum += pw.At(ts)
		n++
	}
	mean := sum / float64(n)
	if mean < 0.4 || mean > 0.6 {
		t.Errorf("sine mean = %v, want ≈0.5", mean)
	}
	// Peak should approach mid+amp.
	var peak float64
	for ts := time.Duration(0); ts < 10*time.Second; ts += 50 * time.Millisecond {
		if v := pw.At(ts); v > peak {
			peak = v
		}
	}
	if peak < 0.8 {
		t.Errorf("sine peak = %v, want ≥0.8", peak)
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	a := RandomWalk(42, 0.3, 0.1, time.Second, time.Minute)
	b := RandomWalk(42, 0.3, 0.1, time.Second, time.Minute)
	for ts := time.Duration(0); ts <= time.Minute; ts += 500 * time.Millisecond {
		if a.At(ts) != b.At(ts) {
			t.Fatalf("same seed diverged at %v", ts)
		}
	}
	c := RandomWalk(43, 0.3, 0.1, time.Second, time.Minute)
	same := true
	for ts := time.Duration(0); ts <= time.Minute; ts += time.Second {
		if a.At(ts) != c.At(ts) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical walks")
	}
}

func TestRandomWalkBounded(t *testing.T) {
	pw := RandomWalk(7, 0.9, 0.5, time.Second, 2*time.Minute)
	for ts := time.Duration(0); ts <= 2*time.Minute; ts += 250 * time.Millisecond {
		v := pw.At(ts)
		if v < 0 || v > MaxLoad {
			t.Fatalf("walk escaped bounds at %v: %v", ts, v)
		}
	}
}

func TestMarkovOnOff(t *testing.T) {
	pw := MarkovOnOff(5, 0.05, 0.9, 10*time.Second, 5*time.Second, 5*time.Minute)
	seen := map[float64]bool{}
	for ts := time.Duration(0); ts <= 5*time.Minute; ts += time.Second {
		seen[pw.At(ts)] = true
	}
	if !seen[0.05] || !seen[0.9] {
		t.Errorf("on/off trace should visit both levels, saw %v", seen)
	}
}

func TestSpikes(t *testing.T) {
	pw := Spikes(0.1, 0.7, 2, time.Second, time.Minute)
	// Spikes at 20s and 40s.
	if pw.At(0) != 0.1 {
		t.Error("base load wrong")
	}
	const tol = 1e-9
	if v := pw.At(20 * time.Second); v < 0.8-tol || v > 0.8+tol {
		t.Errorf("spike 1 = %v", v)
	}
	if pw.At(21*time.Second+500*time.Millisecond) != 0.1 {
		t.Error("load should recover after spike width")
	}
	if v := pw.At(40 * time.Second); v < 0.8-tol || v > 0.8+tol {
		t.Errorf("spike 2 = %v", v)
	}
}

func TestSpikesDegenerate(t *testing.T) {
	pw := Spikes(0.2, 0.5, 0, time.Second, time.Minute)
	for ts := time.Duration(0); ts < time.Minute; ts += time.Second {
		if pw.At(ts) != 0.2 {
			t.Fatal("zero spikes should be constant base")
		}
	}
}

func TestScale(t *testing.T) {
	s := Scale{T: NewConstant(0.4), Factor: 2}
	if s.At(0) != 0.8 {
		t.Errorf("scaled = %v", s.At(0))
	}
	s2 := Scale{T: NewConstant(0.9), Factor: 2}
	if s2.At(0) != MaxLoad {
		t.Error("scale should clamp")
	}
}

func TestShift(t *testing.T) {
	sh := Shift{T: NewStep(10*time.Second, 0.1, 0.6), Delay: 5 * time.Second}
	if sh.At(0) != 0.1 {
		t.Error("before delay should be initial value")
	}
	if sh.At(14*time.Second) != 0.1 {
		t.Error("step should now be at 15s")
	}
	if sh.At(15*time.Second) != 0.6 {
		t.Error("shifted step missing")
	}
	nc, ok := sh.NextChange(0)
	if !ok || nc != 15*time.Second {
		t.Errorf("NextChange = %v %v", nc, ok)
	}
}

// Property: every generator's output is always within [0, MaxLoad] and
// NextChange, when reported, is strictly in the future at a point where the
// value really differs.
func TestPropTraceContract(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		traces := []Trace{
			NewConstant(rng.Float64() * 1.5),
			NewStep(time.Duration(rng.Intn(60))*time.Second, rng.Float64(), rng.Float64()),
			NewSquareWave(rng.Float64()*0.4, 0.5+rng.Float64()*0.4,
				time.Duration(1+rng.Intn(5))*time.Second, time.Duration(1+rng.Intn(5))*time.Second, 0),
			RandomWalk(seed, rng.Float64(), 0.2, time.Second, time.Minute),
			MarkovOnOff(seed, rng.Float64()*0.2, 0.5+rng.Float64()*0.4,
				5*time.Second, 5*time.Second, time.Minute),
			Spikes(rng.Float64()*0.3, rng.Float64()*0.6, rng.Intn(5), time.Second, time.Minute),
		}
		for _, tr := range traces {
			cur := time.Duration(0)
			for i := 0; i < 50; i++ {
				v := tr.At(cur)
				if v < 0 || v > MaxLoad {
					return false
				}
				nc, ok := tr.NextChange(cur)
				if !ok {
					break
				}
				if nc <= cur {
					return false
				}
				if tr.At(nc) == tr.At(cur) {
					return false
				}
				cur = nc
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDescribe(t *testing.T) {
	for _, tr := range []Trace{
		NewConstant(0.5), NewStep(time.Second, 0, 0.5),
		NewSquareWave(0, 0.5, time.Second, time.Second, 0), NewPiecewise(nil),
		Scale{T: NewConstant(0.1), Factor: 1},
	} {
		if Describe(tr) == "" {
			t.Errorf("empty description for %T", tr)
		}
	}
}
