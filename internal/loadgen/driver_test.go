package loadgen_test

// The driver's happy path is exercised end-to-end in cmd/graspd's tests
// (driving a real handler stack); here we pin down its failure reporting
// and defaulting, which must not depend on a live daemon.

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"grasp/internal/loadgen"
)

func TestDriverReportsTransportErrors(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // connection refused from here on
	summary := loadgen.Driver{
		BaseURL: srv.URL,
		Jobs:    2,
		Timeout: 2 * time.Second,
	}.Run()
	if summary.OK() {
		t.Fatal("driver reported success against a dead server")
	}
	if len(summary.Errors) == 0 {
		t.Fatal("no errors recorded")
	}
	if summary.Completed != 0 || summary.Tasks != 0 {
		t.Errorf("phantom work recorded: %+v", summary)
	}
}

func TestDriverRejectsAPIDissent(t *testing.T) {
	// A server that answers everything with an error payload: the driver
	// must surface the HTTP status, not loop forever.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"nope"}`, http.StatusConflict)
	}))
	defer srv.Close()
	summary := loadgen.Driver{BaseURL: srv.URL, Jobs: 1, Timeout: 2 * time.Second}.Run()
	if summary.OK() || len(summary.Errors) == 0 {
		t.Fatalf("driver accepted a refusing server: %+v", summary)
	}
}
