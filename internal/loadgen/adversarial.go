package loadgen

// Adversarial load scenarios for the overload experiments (E29–E31) and the
// scenario end-to-end suite: seeded generators for the two failure shapes
// the predictive policy is built to survive — a node that slowly degrades
// under rising external contention, and demand that arrives faster than the
// configured capacity.

import (
	"math/rand"
	"time"
)

// Ramp returns a piecewise-constant approximation of a linear load ramp:
// the trace holds `from` until start, rises linearly to `to` across the
// following `over` duration (quantised into steps), then holds `to`.
func Ramp(from, to float64, start, over time.Duration, steps int) *Piecewise {
	if steps < 1 {
		steps = 1
	}
	if over <= 0 {
		return NewPiecewise([]Segment{{Start: 0, Load: from}, {Start: start, Load: to}})
	}
	segs := []Segment{{Start: 0, Load: clamp(from)}}
	dt := over / time.Duration(steps)
	if dt <= 0 {
		dt = time.Nanosecond
	}
	for i := 1; i <= steps; i++ {
		frac := float64(i) / float64(steps)
		segs = append(segs, Segment{
			Start: start + dt*time.Duration(i),
			Load:  clamp(from + (to-from)*frac),
		})
	}
	return NewPiecewise(segs)
}

// DegradationSchedule returns n per-node traces for a slow-node-degradation
// scenario: every node carries light seeded background noise, and one node
// (chosen by the seed) ramps to heavy contention across the middle half of
// the horizon — the gradual failure mode a reactive threshold detector only
// notices after tasks have already straggled. Identical seeds reproduce
// identical schedules, so a reactive and a predictive run can be compared
// on the same degradation.
func DegradationSchedule(seed int64, n int, horizon time.Duration) []Trace {
	if n <= 0 {
		return nil
	}
	if horizon <= 0 {
		horizon = time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	victim := rng.Intn(n)
	traces := make([]Trace, n)
	for i := range traces {
		base := 0.05 + 0.10*rng.Float64()
		high := 0.75 + 0.20*rng.Float64()
		walkSeed := rng.Int63()
		if i == victim {
			traces[i] = Ramp(base, high, horizon/4, horizon/2, 8)
			continue
		}
		traces[i] = RandomWalk(walkSeed, base, 0.03, horizon/16, horizon)
	}
	return traces
}
