package loadgen

// This file extends loadgen from modelling external pressure (the traces
// above) to generating it: an HTTP load driver that hammers a running
// graspd daemon with concurrent streaming jobs — the tool for observing
// the service layer under the continuous-traffic regime the roadmap
// targets.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Driver submits concurrent streaming jobs to a graspd daemon and drives
// each to completion. All fields besides BaseURL are optional.
type Driver struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8080".
	BaseURL string
	// Client is the HTTP client (default: 30s-timeout client).
	Client *http.Client
	// Jobs is how many concurrent jobs to run (default 3).
	Jobs int
	// TasksPerJob is the stream length per job (default 200).
	TasksPerJob int
	// Batch is how many tasks each POST carries (default 20).
	Batch int
	// SleepUS is the mean simulated task duration; per-task durations are
	// drawn uniformly from [0.5×, 1.5×] (default 500).
	SleepUS int64
	// Window overrides the per-job in-flight window (0: server default).
	Window int
	// PollEvery is the result-poll interval (default 20ms).
	PollEvery time.Duration
	// Timeout bounds the whole run (default 2 minutes).
	Timeout time.Duration
	// Seed makes the task-duration jitter reproducible.
	Seed int64
	// JobPrefix names the jobs "<prefix>-<i>" (default "load").
	JobPrefix string
	// Skeletons cycles job topologies across the run's jobs: job k is
	// created with skeleton Skeletons[k%len] (default {"farm"}). Use
	// {"farm", "pipeline", "dmap"} to exercise mixed-skeleton traffic
	// against one daemon.
	Skeletons []string
	// PipelineStages is the stage count for pipeline jobs (default 3; the
	// middle stage carries a 2× cost factor so it is the bottleneck).
	PipelineStages int
	// WaveSize caps dmap jobs' decomposition waves (0: server default).
	WaveSize int
	// Placement routes every job's execution: "" or "local" runs on the
	// daemon's workers, "cluster" on its registered graspworker nodes —
	// the knob for driving a whole cluster scenario.
	Placement string
	// Shares cycles fair-share weights across the run's jobs: job k is
	// created with share Shares[k%len] (empty: the server default). Use
	// e.g. {1, 3} to drive competing-priority traffic and watch the
	// allocator hold the worker split at the declared ratio.
	Shares []float64
	// Adapt sets each job's adaptation policy ("reactive" or "predictive";
	// empty: the server default).
	Adapt string
	// Profile shapes the arrival pattern of each job's task stream (see the
	// Profile* constants; empty: steady Batch-sized pushes back to back).
	// Task payloads are drawn from Seed in task-ID order regardless of the
	// profile's batching, so the same Seed replays the same byte stream
	// under every profile.
	Profile string
	// Durable marks the target daemon as journaling (graspd -data-dir):
	// after the drive the driver samples the daemon's /metrics exposition
	// and records the group-commit batch totals in the summary, failing
	// the run if the daemon never journaled a batch — the knob for
	// driving the durable ingest path under the adversarial profiles.
	Durable bool
}

// Arrival profiles for Driver.Profile.
const (
	// ProfileSteady pushes Batch-sized POSTs back to back — the default.
	ProfileSteady = ""
	// ProfileFlashCrowd trickles the first fifth of the stream in
	// Batch-sized POSTs paced PollEvery apart, then bursts the rest in
	// 4×Batch POSTs with no pauses: a calm service hit by a sudden crowd.
	ProfileFlashCrowd = "flash-crowd"
	// ProfileSustainedOverload pushes the whole stream in 2×Batch POSTs
	// paced PollEvery/4 apart — a steady arrival rate held above service
	// capacity for the whole run, the shape that should trip admission
	// control.
	ProfileSustainedOverload = "sustained-overload"
)

func (d Driver) withDefaults() Driver {
	if d.Client == nil {
		d.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if d.Jobs <= 0 {
		d.Jobs = 3
	}
	if d.TasksPerJob <= 0 {
		d.TasksPerJob = 200
	}
	if d.Batch <= 0 {
		d.Batch = 20
	}
	if d.SleepUS <= 0 {
		d.SleepUS = 500
	}
	if d.PollEvery <= 0 {
		d.PollEvery = 20 * time.Millisecond
	}
	if d.Timeout <= 0 {
		d.Timeout = 2 * time.Minute
	}
	if d.JobPrefix == "" {
		d.JobPrefix = "load"
	}
	if len(d.Skeletons) == 0 {
		d.Skeletons = []string{"farm"}
	}
	if d.PipelineStages <= 0 {
		d.PipelineStages = 3
	}
	return d
}

// JobOutcome summarises one driven job.
type JobOutcome struct {
	Name           string
	Skeleton       string
	Submitted      int
	Completed      int
	Duplicates     int
	Breaches       int
	Recalibrations int
	MaxInFlight    int
	// Shed counts task batches the daemon rejected with 429; each was
	// retried after the advertised Retry-After until admitted, so shed
	// batches still end up in Submitted exactly once.
	Shed int
	// RetryAfter is the largest Retry-After the daemon advertised on a
	// shed response (zero when the job was never shed, or the header was
	// absent).
	RetryAfter time.Duration
}

// DriveSummary is the outcome of a whole load run.
type DriveSummary struct {
	Jobs      []JobOutcome
	Tasks     int
	Completed int
	// Shed totals the 429-rejected batches across all jobs.
	Shed    int
	Elapsed time.Duration
	Errors  []string
	// CommitBatches and CommitRecords are the daemon's group-commit
	// totals (the service_commit_batch_size histogram's count and sum)
	// sampled after the run when Durable was set. CommitRecords >
	// CommitBatches means concurrent pushes provably coalesced under
	// shared fsyncs.
	CommitBatches int64
	CommitRecords int64
}

// OK reports whether every submitted task completed exactly once with no
// transport errors.
func (s DriveSummary) OK() bool {
	if len(s.Errors) > 0 || s.Completed != s.Tasks {
		return false
	}
	for _, j := range s.Jobs {
		if j.Duplicates > 0 || j.Completed != j.Submitted {
			return false
		}
	}
	return true
}

// Run executes the load scenario: create Jobs jobs, stream TasksPerJob
// tasks into each in Batch-sized POSTs, close the inputs, and poll results
// until every job drains (or Timeout passes).
func (d Driver) Run() DriveSummary {
	d = d.withDefaults()
	start := time.Now()
	deadline := start.Add(d.Timeout)

	var (
		mu      sync.Mutex
		summary DriveSummary
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		summary.Errors = append(summary.Errors, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	var wg sync.WaitGroup
	outcomes := make([]JobOutcome, d.Jobs)
	for k := 0; k < d.Jobs; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("%s-%d", d.JobPrefix, k)
			skeleton := d.Skeletons[k%len(d.Skeletons)]
			outcomes[k] = d.driveJob(name, skeleton, int64(k), deadline, fail)
		}()
	}
	wg.Wait()

	summary.Jobs = outcomes
	for _, o := range outcomes {
		summary.Tasks += o.Submitted
		summary.Completed += o.Completed
		summary.Shed += o.Shed
	}
	summary.Elapsed = time.Since(start)
	if d.Durable {
		batches, records, err := d.sampleCommitStats()
		if err != nil {
			fail("durable drive: %v", err)
		} else if batches == 0 {
			fail("durable drive: daemon journaled no commit batches (is -data-dir set?)")
		}
		summary.CommitBatches, summary.CommitRecords = batches, records
	}
	return summary
}

// sampleCommitStats scrapes the daemon's Prometheus exposition for the
// service_commit_batch_size histogram: its count is how many fsync
// batches the wal flushed, its sum how many records they carried.
func (d Driver) sampleCommitStats() (batches, records int64, err error) {
	resp, err := d.Client.Get(d.BaseURL + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, s := range []struct {
			prefix string
			into   *int64
		}{
			{"service_commit_batch_size_count ", &batches},
			{"service_commit_batch_size_sum ", &records},
		} {
			if rest, ok := strings.CutPrefix(line, s.prefix); ok {
				v, perr := strconv.ParseFloat(strings.TrimSpace(rest), 64)
				if perr != nil {
					return 0, 0, fmt.Errorf("parsing %q: %w", line, perr)
				}
				*s.into = int64(v)
			}
		}
	}
	return batches, records, sc.Err()
}

// driveJob runs one job end to end.
func (d Driver) driveJob(name, skeleton string, salt int64, deadline time.Time, fail func(string, ...any)) JobOutcome {
	out := JobOutcome{Name: name, Skeleton: skeleton}
	rng := rand.New(rand.NewSource(d.Seed ^ (salt + 1)))

	create := map[string]any{"name": name}
	if d.Window > 0 {
		create["window"] = d.Window
	}
	if d.Placement != "" {
		create["placement"] = d.Placement
	}
	if len(d.Shares) > 0 {
		if share := d.Shares[int(salt)%len(d.Shares)]; share > 0 {
			create["share"] = share
		}
	}
	if d.Adapt != "" {
		create["adapt"] = d.Adapt
	}
	switch skeleton {
	case "", "farm":
		// The daemon's default; omit the field to exercise that path too.
	case "pipeline":
		create["skeleton"] = "pipeline"
		stages := make([]map[string]any, d.PipelineStages)
		for i := range stages {
			factor := 1.0
			if i == d.PipelineStages/2 {
				factor = 2.0 // a structural bottleneck for the remapper
			}
			stages[i] = map[string]any{
				"name":        fmt.Sprintf("s%d", i),
				"cost_factor": factor,
			}
		}
		create["stages"] = stages
	case "dmap":
		create["skeleton"] = "dmap"
		if d.WaveSize > 0 {
			create["wave_size"] = d.WaveSize
		}
	default:
		create["skeleton"] = skeleton // let the daemon validate
	}
	if err := d.post("/api/v1/jobs", create, nil); err != nil {
		fail("create %s: %v", name, err)
		return out
	}

	type taskSpec struct {
		ID      int   `json:"id"`
		SleepUS int64 `json:"sleep_us"`
	}
	// Draw every task's payload up front, in ID order, so the byte stream
	// for a given Seed is identical no matter how the profile batches it.
	specs := make([]taskSpec, d.TasksPerJob)
	for i := range specs {
		jitter := 0.5 + rng.Float64()
		specs[i] = taskSpec{ID: i, SleepUS: int64(float64(d.SleepUS) * jitter)}
	}
	for _, step := range d.planPushes() {
		if step.pause > 0 {
			time.Sleep(step.pause)
		}
		batch := specs[step.from:step.to]
		if err := d.pushBatch(name, map[string]any{"tasks": batch}, deadline, &out); err != nil {
			fail("push %s: %v", name, err)
			return out
		}
		out.Submitted += len(batch)
	}
	if err := d.post("/api/v1/jobs/"+name+"/close", nil, nil); err != nil {
		fail("close %s: %v", name, err)
		return out
	}

	seen := make(map[int]bool, d.TasksPerJob)
	cursor := 0
	for {
		var poll struct {
			Results []struct {
				ID int `json:"id"`
			} `json:"results"`
			Next  int    `json:"next"`
			State string `json:"state"`
		}
		if err := d.get(fmt.Sprintf("/api/v1/jobs/%s/results?after=%d", name, cursor), &poll); err != nil {
			fail("poll %s: %v", name, err)
			return out
		}
		for _, r := range poll.Results {
			if seen[r.ID] {
				out.Duplicates++
				continue
			}
			seen[r.ID] = true
			out.Completed++
		}
		cursor = poll.Next
		if poll.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			fail("timeout %s: %d/%d completed", name, out.Completed, out.Submitted)
			return out
		}
		time.Sleep(d.PollEvery)
	}

	var status struct {
		Breaches       int `json:"breaches"`
		Recalibrations int `json:"recalibrations"`
		MaxInFlight    int `json:"max_in_flight"`
	}
	if err := d.get("/api/v1/jobs/"+name, &status); err != nil {
		fail("status %s: %v", name, err)
		return out
	}
	out.Breaches = status.Breaches
	out.Recalibrations = status.Recalibrations
	out.MaxInFlight = status.MaxInFlight
	return out
}

// pushStep is one planned task POST: tasks [from, to), optionally preceded
// by a pacing pause.
type pushStep struct {
	from, to int
	pause    time.Duration
}

// planPushes slices the task stream into POSTs according to Profile. The
// plan is a pure function of the driver's configuration, so a run with the
// same Seed replays the same requests.
func (d Driver) planPushes() []pushStep {
	chunk := func(from, to, size int, pause time.Duration) []pushStep {
		var steps []pushStep
		for base := from; base < to; base += size {
			end := base + size
			if end > to {
				end = to
			}
			p := pause
			if base == from {
				p = 0
			}
			steps = append(steps, pushStep{from: base, to: end, pause: p})
		}
		return steps
	}
	switch d.Profile {
	case ProfileFlashCrowd:
		// Trickle the first fifth paced PollEvery apart, then burst the
		// rest in 4×Batch POSTs back to back.
		trickle := d.TasksPerJob / 5
		if trickle < d.Batch {
			trickle = min(d.Batch, d.TasksPerJob)
		}
		steps := chunk(0, trickle, d.Batch, d.PollEvery)
		return append(steps, chunk(trickle, d.TasksPerJob, 4*d.Batch, 0)...)
	case ProfileSustainedOverload:
		return chunk(0, d.TasksPerJob, 2*d.Batch, d.PollEvery/4)
	default:
		return chunk(0, d.TasksPerJob, d.Batch, 0)
	}
}

// pushBatch POSTs one task batch, retrying each time the daemon sheds it
// with 429 (after the advertised Retry-After) until the batch is admitted
// or the deadline passes.
func (d Driver) pushBatch(name string, body any, deadline time.Time, out *JobOutcome) error {
	for {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
		resp, err := d.Client.Post(d.BaseURL+"/api/v1/jobs/"+name+"/tasks", "application/json", &buf)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			return decodeReply(resp, nil)
		}
		retry := d.PollEvery
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
			if retry > out.RetryAfter {
				out.RetryAfter = retry
			}
		}
		resp.Body.Close()
		out.Shed++
		if time.Now().Add(retry).After(deadline) {
			return fmt.Errorf("shed %d times, Retry-After %v would pass the deadline", out.Shed, retry)
		}
		time.Sleep(retry)
	}
}

// post sends body as JSON and optionally decodes the reply.
func (d Driver) post(path string, body, out any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	resp, err := d.Client.Post(d.BaseURL+path, "application/json", &buf)
	if err != nil {
		return err
	}
	return decodeReply(resp, out)
}

// get fetches path and decodes the reply.
func (d Driver) get(path string, out any) error {
	resp, err := d.Client.Get(d.BaseURL + path)
	if err != nil {
		return err
	}
	return decodeReply(resp, out)
}

// decodeReply checks the status and decodes JSON into out when non-nil.
func decodeReply(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
