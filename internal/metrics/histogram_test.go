package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("bounds=%v counts=%v", bounds, counts)
	}
	// ≤1: 0.5, 1 → 2; (1,2]: 1.5, 2 → 2; (2,5]: 3 → 1; +Inf: 10 → 1.
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts=%v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+10; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

func TestHistogramBoundsNormalised(t *testing.T) {
	h := newHistogram([]float64{5, 1, 5, math.Inf(1), math.NaN(), 2})
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || bounds[0] != 1 || bounds[1] != 2 || bounds[2] != 5 {
		t.Fatalf("bounds = %v, want [1 2 5]", bounds)
	}
	if len(counts) != 4 {
		t.Fatalf("counts len = %d, want 4 (+Inf bucket)", len(counts))
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := newHistogram(nil)
	bounds, _ := h.Buckets()
	if len(bounds) != len(DefDurationBuckets) {
		t.Fatalf("default bounds = %v", bounds)
	}
	h.ObserveDuration(3 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-0.003) > 1e-12 {
		t.Fatalf("Sum = %v, want 0.003", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40})
	// 100 uniform samples over (0, 40]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	if got := h.Quantile(0.5); math.Abs(got-20) > 2 {
		t.Fatalf("p50 = %v, want ≈20", got)
	}
	if got := h.Quantile(0.25); math.Abs(got-10) > 2 {
		t.Fatalf("p25 = %v, want ≈10", got)
	}
	if got := h.Quantile(1); got != 40 {
		t.Fatalf("p100 = %v, want 40", got)
	}
	if got := h.Quantile(0); got < 0 || got > 1 {
		t.Fatalf("p0 = %v, want ≈0", got)
	}
}

func TestHistogramQuantileOverflowClamps(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want clamp to 2", got)
	}
	empty := newHistogram([]float64{1})
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("lat", BatchBuckets)
	h2 := r.Histogram("lat", nil) // same name: same handle, bounds ignored
	if h1 != h2 {
		t.Fatal("Histogram did not return the existing handle")
	}
	h1.Observe(3)
	if h2.Count() != 1 {
		t.Fatal("handles are not aliased")
	}
	r.Delete("lat")
	if h3 := r.Histogram("lat", nil); h3 == h1 {
		t.Fatal("Delete did not remove the histogram")
	}
}

func TestRenderPromValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total").Add(3)
	r.Gauge("nodes live").Set(2) // space must be folded by LabelSafe
	h := r.Histogram("task_latency_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	text := r.RenderProm()
	stats, err := ParseProm(text)
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, text)
	}
	if stats.Histograms != 1 {
		t.Fatalf("histogram families = %d, want 1", stats.Histograms)
	}
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"jobs_total 3",
		"# TYPE nodes_live gauge",
		"nodes_live 2",
		"nodes_live_max 2",
		"# TYPE task_latency_seconds histogram",
		`task_latency_seconds_bucket{le="0.001"} 1`,
		`task_latency_seconds_bucket{le="0.1"} 2`,
		`task_latency_seconds_bucket{le="+Inf"} 3`,
		"task_latency_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestRenderPromDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Inc()
	}
	r.Histogram("hist", []float64{1})
	first := r.RenderProm()
	for i := 0; i < 5; i++ {
		if got := r.RenderProm(); got != first {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	if strings.Index(first, "alpha") > strings.Index(first, "zeta") {
		t.Fatalf("families not sorted:\n%s", first)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad name":       "1bad 3\n",
		"bad value":      "ok nope\n",
		"bad comment":    "# FROB x y\n",
		"non-cumulative": "# HELP h grasp histogram\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"le descending":  "# HELP h grasp histogram\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"no inf":         "# HELP h grasp histogram\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"count mismatch": "# HELP h grasp histogram\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for name, text := range cases {
		if _, err := ParseProm(text); err == nil {
			t.Errorf("%s: ParseProm accepted %q", name, text)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram([]float64{0.5})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); math.Abs(got-8000) > 1e-6 {
		t.Fatalf("Sum = %v, want 8000", got)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DefDurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}
