package metrics

// Prometheus text exposition for the Registry. The legacy Render keeps
// serving bare "name value" lines; RenderProm is the superset the daemon's
// /metrics endpoint serves — the same sorted sample lines, now preceded by
// `# HELP`/`# TYPE` metadata and joined by histogram `_bucket`/`_sum`/
// `_count` series. Series are emitted in deterministic sorted order and
// every name passes through LabelSafe on the way out, so a dynamically
// named series (a per-node gauge minted from a worker id) can never break
// the exposition. ParseProm is the matching validator the tests and the CI
// observability smoke use to keep the format honest.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// RenderProm writes every metric in the Prometheus text exposition format.
func (r *Registry) RenderProm() string {
	r.mu.Lock()
	type histEntry struct {
		name string
		h    *Histogram
	}
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[LabelSafe(name)] = c.Value()
	}
	gauges := make(map[string]int64, 2*len(r.gauges))
	for name, g := range r.gauges {
		gauges[LabelSafe(name)] = g.Value()
		gauges[LabelSafe(name)+"_max"] = g.Max()
	}
	hists := make([]histEntry, 0, len(r.histograms))
	for name, h := range r.histograms {
		hists = append(hists, histEntry{LabelSafe(name), h})
	}
	r.mu.Unlock()

	names := make([]string, 0, len(counters)+len(gauges)+len(hists))
	for name := range counters {
		names = append(names, name)
	}
	for name := range gauges {
		names = append(names, name)
	}
	histByName := make(map[string]*Histogram, len(hists))
	for _, he := range hists {
		names = append(names, he.name)
		histByName[he.name] = he.h
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		switch {
		case histByName[name] != nil:
			renderPromHistogram(&b, name, histByName[name])
		default:
			kind := "gauge"
			value, isCounter := counters[name]
			if isCounter {
				kind = "counter"
			} else {
				value = gauges[name]
			}
			fmt.Fprintf(&b, "# HELP %s grasp %s\n# TYPE %s %s\n%s %d\n",
				name, kind, name, kind, name, value)
		}
	}
	return b.String()
}

// renderPromHistogram emits one histogram family: cumulative `le` buckets
// ending at +Inf, then the sum and count series.
func renderPromHistogram(b *strings.Builder, name string, h *Histogram) {
	bounds, counts := h.Buckets()
	fmt.Fprintf(b, "# HELP %s grasp histogram\n# TYPE %s histogram\n", name, name)
	var cum int64
	for i, bound := range bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n",
			name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
}

// PromStats summarises a parsed exposition.
type PromStats struct {
	// Samples counts every sample line.
	Samples int
	// Histograms counts the families declared `# TYPE ... histogram`.
	Histograms int
}

// histParse accumulates one histogram family's consistency state.
type histParse struct {
	lastLe   float64
	lastCum  int64
	buckets  int
	infCum   int64
	sawInf   bool
	count    int64
	sawCount bool
}

// ParseProm validates a Prometheus text exposition: well-formed comment
// and sample lines, metric names in the exposition alphabet, and for every
// declared histogram family — `le` bounds strictly ascending, cumulative
// bucket counts non-decreasing, a closing +Inf bucket whose count equals
// the family's `_count` series. It is deliberately a small subset of a
// real Prometheus parser: exactly strict enough to catch a malformed
// exposition in tests and CI.
func ParseProm(text string) (PromStats, error) {
	var stats PromStats
	histograms := make(map[string]*histParse)
	for lineNo, line := range strings.Split(text, "\n") {
		ln := lineNo + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return stats, fmt.Errorf("line %d: malformed comment %q", ln, line)
			}
			if !promName(fields[2]) {
				return stats, fmt.Errorf("line %d: bad metric name %q", ln, fields[2])
			}
			if fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge":
				case "histogram":
					stats.Histograms++
					histograms[fields[2]] = &histParse{lastLe: math.Inf(-1)}
				default:
					return stats, fmt.Errorf("line %d: unknown type %q", ln, fields[3])
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return stats, fmt.Errorf("line %d: %v", ln, err)
		}
		stats.Samples++
		base, series := histSeries(name, histograms)
		if series == "" {
			continue
		}
		hp := histograms[base]
		switch series {
		case "bucket":
			le, ok := labels["le"]
			if !ok {
				return stats, fmt.Errorf("line %d: %s_bucket without le label", ln, base)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return stats, fmt.Errorf("line %d: bad le %q: %v", ln, le, err)
				}
			}
			if bound <= hp.lastLe {
				return stats, fmt.Errorf("line %d: le %q not ascending", ln, le)
			}
			cum := int64(value)
			if cum < hp.lastCum {
				return stats, fmt.Errorf("line %d: bucket count %d below previous %d (not cumulative)", ln, cum, hp.lastCum)
			}
			hp.lastLe, hp.lastCum = bound, cum
			hp.buckets++
			if math.IsInf(bound, 1) {
				hp.sawInf, hp.infCum = true, cum
			}
		case "count":
			hp.count, hp.sawCount = int64(value), true
		}
	}
	for name, hp := range histograms {
		if hp.buckets == 0 {
			return stats, fmt.Errorf("histogram %s declared but has no buckets", name)
		}
		if !hp.sawInf {
			return stats, fmt.Errorf("histogram %s has no +Inf bucket", name)
		}
		if !hp.sawCount {
			return stats, fmt.Errorf("histogram %s has no _count series", name)
		}
		if hp.count != hp.infCum {
			return stats, fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", name, hp.count, hp.infCum)
		}
	}
	return stats, nil
}

// histSeries classifies a sample name against the declared histogram
// families: "<base>_bucket"/"_sum"/"_count" when base is a histogram.
func histSeries(name string, histograms map[string]*histParse) (base, series string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			base = strings.TrimSuffix(name, suffix)
			if _, ok := histograms[base]; ok {
				return base, suffix[1:]
			}
		}
	}
	return "", ""
}

// parseSample splits one sample line into name, labels, and value.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		end := strings.IndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		name = rest[:i]
		labels = map[string]string{}
		for _, pair := range strings.Split(rest[i+1:end], ",") {
			if pair == "" {
				continue
			}
			kv := strings.SplitN(pair, "=", 2)
			if len(kv) != 2 || !strings.HasPrefix(kv[1], `"`) || !strings.HasSuffix(kv[1], `"`) {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			labels[kv[0]] = strings.Trim(kv[1], `"`)
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if !promName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	value, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return name, labels, value, nil
}

// promName reports whether s is a valid exposition metric name.
func promName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
