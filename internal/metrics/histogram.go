package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution, safe for concurrent use.
// Observe is allocation-free (a linear scan over a handful of bounds plus
// three atomic updates), so the dispatch and journal hot paths can carry
// one without disturbing the zero-allocation discipline those paths are
// benchmarked under. Buckets are fixed at construction: the exposition is
// Prometheus's cumulative `le` convention, where bucket i counts the
// observations ≤ bounds[i] and an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds  []float64      // ascending upper bounds; +Inf is implicit
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// DefDurationBuckets are the default upper bounds (seconds) for duration
// histograms: 100µs to 10s in a coarse log scale, covering spin tasks,
// network round trips, and fsyncs alike.
var DefDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// BatchBuckets are upper bounds for small-count distributions (results
// batch depth, lease batch size): powers of two up to the wire's caps.
var BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefDurationBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	// Drop duplicates and non-finite bounds; +Inf is always implicit.
	out := bs[:0]
	for _, b := range bs {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == b {
			continue
		}
		out = append(out, b)
	}
	return &Histogram{bounds: out, counts: make([]atomic.Int64, len(out)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds — the Prometheus
// base unit every *_seconds histogram here uses.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns how many samples were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets snapshots the upper bounds and their per-bucket (not cumulative)
// counts; the final count is the +Inf overflow bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the bucket the rank falls into — the same estimate a Prometheus
// histogram_quantile would produce from the exposition. Samples past the
// last finite bound clamp to it. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.bounds {
		c := h.counts[i].Load()
		if c > 0 && float64(cum+c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += c
	}
	// Rank lands in the +Inf bucket: clamp to the largest finite bound.
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}
