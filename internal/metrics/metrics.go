// Package metrics computes the performance measures the paper's evaluation
// shape is stated in: makespan, speedup, efficiency, load imbalance, and
// fairness across nodes. It also provides the operational Registry the
// daemons export: counters, gauges, and fixed-bucket latency histograms
// with a zero-allocation Observe path, rendered deterministically in
// Prometheus text exposition format (RenderProm) alongside the legacy
// `name value` sample lines.
package metrics

import (
	"math"
	"time"

	"grasp/internal/stats"
)

// Speedup returns sequential/parallel. NaN when parallel is non-positive.
func Speedup(sequential, parallel time.Duration) float64 {
	if parallel <= 0 {
		return math.NaN()
	}
	return float64(sequential) / float64(parallel)
}

// Efficiency returns speedup divided by the number of processors.
func Efficiency(sequential, parallel time.Duration, procs int) float64 {
	if procs <= 0 {
		return math.NaN()
	}
	return Speedup(sequential, parallel) / float64(procs)
}

// Imbalance measures load imbalance as max/mean of per-node busy time minus
// one: 0 means perfect balance, 1 means the busiest node did twice the mean.
// NaN for empty input or zero mean.
func Imbalance(busy []time.Duration) float64 {
	if len(busy) == 0 {
		return math.NaN()
	}
	xs := durationsToSeconds(busy)
	m := stats.Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return stats.Max(xs)/m - 1
}

// JainFairness returns Jain's fairness index of per-node busy times:
// (Σx)²/(n·Σx²), in (0, 1], 1 meaning perfectly equal shares.
func JainFairness(busy []time.Duration) float64 {
	if len(busy) == 0 {
		return math.NaN()
	}
	xs := durationsToSeconds(busy)
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return math.NaN()
	}
	n := float64(len(xs))
	return sum * sum / (n * sumSq)
}

// CoefVar returns the coefficient of variation of per-node busy times.
func CoefVar(busy []time.Duration) float64 {
	return stats.CoefVar(durationsToSeconds(busy))
}

// MeanDuration returns the mean of ds (0 for empty input).
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// MaxDuration returns the maximum of ds (0 for empty input).
func MaxDuration(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// MinDuration returns the minimum of ds (0 for empty input).
func MinDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// durationsToSeconds converts to float seconds for the stats layer.
func durationsToSeconds(ds []time.Duration) []float64 {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return xs
}

// GainPercent returns the improvement of measured over baseline as a
// percentage of baseline (positive = measured is faster).
func GainPercent(baseline, measured time.Duration) float64 {
	if baseline <= 0 {
		return math.NaN()
	}
	return 100 * float64(baseline-measured) / float64(baseline)
}
