package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing operational counter, safe for
// concurrent use. The service layer exports these alongside the analytical
// measures above.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value that also tracks its high-water
// mark, safe for concurrent use.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores v and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Add shifts the gauge by delta and updates the high-water mark.
func (g *Gauge) Add(delta int64) {
	v := g.v.Add(delta)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// LabelSafe folds an arbitrary identifier (a cluster node id, a job name)
// into the [a-zA-Z0-9_] alphabet metric names are built from, so dynamic
// per-entity metrics stay parseable by the plain-text exposition format.
func LabelSafe(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// Registry is a named collection of counters, gauges, and histograms. The
// zero value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Delete removes the named counter and/or gauge. Use for per-entity
// series (per-node gauges) whose entity is gone — a registry serving a
// long-lived daemon must not accumulate series for every id ever seen.
func (r *Registry) Delete(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.counters, name)
	delete(r.gauges, name)
	delete(r.histograms, name)
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (nil/empty bounds: DefDurationBuckets).
// A later call under the same name returns the existing histogram
// regardless of bounds — handles are meant to be resolved once and kept,
// exactly like the coordinator's pre-resolved counters.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns every metric's current value by name. Gauges add a
// "_max" entry for their high-water mark.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+2*len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
		out[name+"_max"] = g.Max()
	}
	return out
}

// Render writes the snapshot as sorted "name value" lines — the plain-text
// exposition format the daemon's /metrics endpoint serves.
func (r *Registry) Render() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s %d\n", name, snap[name])
	}
	return b.String()
}
