package metrics

import (
	"math"
	"testing"
	"time"
)

func TestSpeedup(t *testing.T) {
	if got := Speedup(10*time.Second, 2*time.Second); got != 5 {
		t.Errorf("Speedup = %v", got)
	}
	if !math.IsNaN(Speedup(time.Second, 0)) {
		t.Error("zero parallel time should be NaN")
	}
}

func TestEfficiency(t *testing.T) {
	if got := Efficiency(10*time.Second, 2*time.Second, 5); got != 1 {
		t.Errorf("Efficiency = %v", got)
	}
	if got := Efficiency(10*time.Second, 2*time.Second, 10); got != 0.5 {
		t.Errorf("Efficiency = %v", got)
	}
	if !math.IsNaN(Efficiency(time.Second, time.Second, 0)) {
		t.Error("zero procs should be NaN")
	}
}

func TestImbalance(t *testing.T) {
	perfect := []time.Duration{time.Second, time.Second, time.Second}
	if got := Imbalance(perfect); math.Abs(got) > 1e-9 {
		t.Errorf("perfect balance = %v, want 0", got)
	}
	skewed := []time.Duration{2 * time.Second, time.Second, time.Second} // max 2, mean 4/3
	if got := Imbalance(skewed); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Imbalance = %v, want 0.5", got)
	}
	if !math.IsNaN(Imbalance(nil)) {
		t.Error("empty should be NaN")
	}
	if !math.IsNaN(Imbalance([]time.Duration{0, 0})) {
		t.Error("all-zero should be NaN")
	}
}

func TestJainFairness(t *testing.T) {
	equal := []time.Duration{time.Second, time.Second, time.Second, time.Second}
	if got := JainFairness(equal); math.Abs(got-1) > 1e-9 {
		t.Errorf("equal fairness = %v, want 1", got)
	}
	// One node does everything: index = 1/n.
	solo := []time.Duration{4 * time.Second, 0, 0, 0}
	if got := JainFairness(solo); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("solo fairness = %v, want 0.25", got)
	}
	if !math.IsNaN(JainFairness(nil)) || !math.IsNaN(JainFairness([]time.Duration{0})) {
		t.Error("degenerate inputs should be NaN")
	}
}

func TestJainBetween(t *testing.T) {
	xs := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	got := JainFairness(xs)
	if got <= 1.0/3 || got >= 1 {
		t.Errorf("fairness = %v, want within (1/3, 1)", got)
	}
}

func TestCoefVar(t *testing.T) {
	if got := CoefVar([]time.Duration{time.Second, time.Second}); got != 0 {
		t.Errorf("CoefVar equal = %v", got)
	}
}

func TestDurationAggregates(t *testing.T) {
	ds := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	if MeanDuration(ds) != 2*time.Second {
		t.Errorf("Mean = %v", MeanDuration(ds))
	}
	if MaxDuration(ds) != 3*time.Second {
		t.Errorf("Max = %v", MaxDuration(ds))
	}
	if MinDuration(ds) != time.Second {
		t.Errorf("Min = %v", MinDuration(ds))
	}
	if MeanDuration(nil) != 0 || MaxDuration(nil) != 0 || MinDuration(nil) != 0 {
		t.Error("empty aggregates should be 0")
	}
}

func TestGainPercent(t *testing.T) {
	if got := GainPercent(10*time.Second, 5*time.Second); got != 50 {
		t.Errorf("Gain = %v", got)
	}
	if got := GainPercent(10*time.Second, 12*time.Second); got != -20 {
		t.Errorf("Gain = %v", got)
	}
	if !math.IsNaN(GainPercent(0, time.Second)) {
		t.Error("zero baseline should be NaN")
	}
}
