package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("ops").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops").Value(); got != 8000 {
		t.Errorf("ops = %d, want 8000", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("value = %d, want 5", c.Value())
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	var g Gauge
	g.Set(3)
	g.Add(4)
	g.Add(-6)
	if g.Value() != 1 {
		t.Errorf("value = %d, want 1", g.Value())
	}
	if g.Max() != 7 {
		t.Errorf("max = %d, want 7", g.Max())
	}
}

func TestRegistrySnapshotAndRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_inflight").Set(5)
	snap := r.Snapshot()
	if snap["b_total"] != 2 || snap["a_inflight"] != 5 || snap["a_inflight_max"] != 5 {
		t.Errorf("snapshot = %v", snap)
	}
	rendered := r.Render()
	if !strings.HasPrefix(rendered, "a_inflight 5\n") || !strings.Contains(rendered, "b_total 2\n") {
		t.Errorf("render = %q", rendered)
	}
}

func TestLabelSafe(t *testing.T) {
	cases := map[string]string{
		"node-a":       "node_a",
		"host.12:90":   "host_12_90",
		"ok_Already9":  "ok_Already9",
		"sp ace/slash": "sp_ace_slash",
	}
	for in, want := range cases {
		if got := LabelSafe(in); got != want {
			t.Errorf("LabelSafe(%q) = %q, want %q", in, got, want)
		}
	}
}
