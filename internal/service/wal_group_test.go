package service

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"grasp/internal/journal"
)

// errDiskGone is the injected storage failure the latched-error tests
// assert on: every committer must surface exactly this error.
var errDiskGone = errors.New("injected: disk gone")

// failingStore wraps a real journal.Store and starts failing Sync after
// syncsLeft successful ones — the appends land in the file, the fsync
// covering them reports failure, which is precisely the
// crash-between-append-and-sync window for a group.
type failingStore struct {
	*journal.Store
	mu        sync.Mutex
	syncsLeft int
}

func (f *failingStore) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.syncsLeft <= 0 {
		return errDiskGone
	}
	f.syncsLeft--
	return f.Store.Sync()
}

// gatedStore wraps a real journal.Store, counts batches and records, and
// blocks its first Sync until the test releases the gate — pinning the
// flush leader mid-fsync so a convoy of followers provably queues behind
// one flush round.
type gatedStore struct {
	*journal.Store
	mu      sync.Mutex
	syncs   int
	records int
	gate    chan struct{}
}

func (g *gatedStore) AppendBatch(p [][]byte) error {
	g.mu.Lock()
	g.records += len(p)
	g.mu.Unlock()
	return g.Store.AppendBatch(p)
}

func (g *gatedStore) Sync() error {
	g.mu.Lock()
	g.syncs++
	first := g.syncs == 1
	g.mu.Unlock()
	if first {
		<-g.gate
	}
	return g.Store.Sync()
}

// walOverStore opens a real store in dir and hands it to the caller to
// wrap before the wal is built over it.
func walOverStore(t *testing.T, dir string) *journal.Store {
	t.Helper()
	store, rec, err := journal.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("expected a fresh store, replayed %+v", rec)
	}
	return store
}

// TestRecoveryGroupCommitCoalesces pins the flush leader inside its fsync
// and piles 31 followers behind it: the whole convoy must drain in
// exactly one more flush — 32 records, 2 batches, 2 fsyncs — and a
// replay over the same directory must agree with the live mirror record
// for record. This is the "fsyncs per record < 1" property made
// deterministic.
func TestRecoveryGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	gs := &gatedStore{Store: walOverStore(t, dir), gate: make(chan struct{})}
	w := newWAL(gs, walOptions{})

	const followers = 31
	var wg sync.WaitGroup
	errs := make([]error, followers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[0] = w.commit(walRecord{Kind: walCreate, Job: "g", Spec: &JobSpec{}})
	}()
	// The leader is mid-fsync once the gated Sync has been entered; every
	// commit from here on must join the queue rather than reach the store.
	waitUntil(t, 5*time.Second, "leader pinned in fsync", func() bool {
		gs.mu.Lock()
		defer gs.mu.Unlock()
		return gs.syncs == 1
	})
	for i := 0; i < followers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i+1] = w.commit(walRecord{Kind: walTasks, Job: "g", Tasks: []TaskSpec{{ID: i, Cost: 1}}})
		}()
	}
	waitUntil(t, 5*time.Second, "followers queued", func() bool {
		w.mu.Lock()
		defer w.mu.Unlock()
		return len(w.queue) == followers
	})
	close(gs.gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	gs.mu.Lock()
	syncs, records := gs.syncs, gs.records
	gs.mu.Unlock()
	if records != followers+1 {
		t.Fatalf("store absorbed %d records, want %d", records, followers+1)
	}
	if syncs != 2 {
		t.Fatalf("convoy took %d fsyncs, want exactly 2 (leader + one group)", syncs)
	}

	live := w.mirror()
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	replayed, err := openWAL(dir, walOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer replayed.close()
	if got := replayed.mirror(); !bytes.Equal(got, live) {
		t.Fatalf("replay diverges from live mirror:\nlive:     %s\nreplayed: %s", live, got)
	}
	pending, _ := replayed.jobPending("g")
	if len(pending) != followers {
		t.Fatalf("replayed %d pending tasks, want %d", len(pending), followers)
	}
}

// TestRecoveryLatchedErrorConcurrent drives N goroutines through one
// failing store: the first batch whose fsync fails latches the wal, every
// committer — batched with the failure, queued behind it, or arriving
// after — must observe that same error, and the mirror must never diverge
// from what is actually in the journal (the failed group's appends landed
// in the file; its fsync did not, so none of its members were
// acknowledged).
func TestRecoveryLatchedErrorConcurrent(t *testing.T) {
	dir := t.TempDir()
	fs := &failingStore{Store: walOverStore(t, dir), syncsLeft: 1}
	w := newWAL(fs, walOptions{})

	// One durable record before the disk "fails", so replay has a prefix.
	if err := w.commit(walRecord{Kind: walCreate, Job: "latch", Spec: &JobSpec{}}); err != nil {
		t.Fatal(err)
	}

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = w.commit(walRecord{Kind: walTasks, Job: "latch", Tasks: []TaskSpec{{ID: i, Cost: 1}}})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, errDiskGone) {
			t.Fatalf("commit %d returned %v, want the latched %v", i, err, errDiskGone)
		}
	}
	// The latch is permanent: a late committer gets the same error without
	// the store seeing another byte.
	if err := w.commit(walRecord{Kind: walClose, Job: "latch"}); !errors.Is(err, errDiskGone) {
		t.Fatalf("post-latch commit returned %v, want %v", err, errDiskGone)
	}

	// Fail-stop kept mirror and journal in agreement: every record the
	// mirror applied was appended before the failing fsync, so a replay of
	// the directory reconstructs the live mirror exactly — and none of the
	// failed commits were acknowledged, so nothing beyond the journal was
	// ever promised.
	live := w.mirror()
	// close skips the final snapshot on a latched wal (rotating would need
	// a working disk); it only releases the store.
	if err := w.close(); err != nil {
		t.Fatalf("close after latch: %v", err)
	}
	replayed, err := openWAL(dir, walOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer replayed.close()
	if got := replayed.mirror(); !bytes.Equal(got, live) {
		t.Fatalf("mirror diverged from journal after latched error:\nlive:     %s\nreplayed: %s", live, got)
	}
}

// TestRecoveryReplayDeterminismConcurrent is the replay-determinism
// property under the group path: many goroutines commit interleaved
// random schedules concurrently, so records coalesce into multi-record
// batches in nondeterministic orders — yet whatever order the leader
// journals must be exactly the order the mirror applied, and a fresh wal
// over the same directory must reconstruct a byte-identical state.
func TestRecoveryReplayDeterminismConcurrent(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			// A small cap forces compactions mid-convoy; a tiny linger widens
			// the batches.
			w, err := openWAL(dir, walOptions{maxBytes: 4096, linger: 100 * time.Microsecond})
			if err != nil {
				t.Fatal(err)
			}
			spec := JobSpec{}.withDefaults(Config{}.withDefaults())
			spec.MaxResults = 8
			const committers = 8
			var wg sync.WaitGroup
			for g := 0; g < committers; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed*100 + int64(g)))
					name := fmt.Sprintf("job-%d", g)
					if err := w.commit(walRecord{Kind: walCreate, Job: name, Spec: &spec}); err != nil {
						t.Error(err)
						return
					}
					for step := 0; step < 40; step++ {
						var rec walRecord
						switch rng.Intn(6) {
						case 0, 1, 2:
							rec = walRecord{Kind: walTasks, Job: name, Tasks: []TaskSpec{{ID: g*1000 + step, Cost: 1}}}
						case 3, 4:
							rec = walRecord{Kind: walResults, Job: name, Results: []TaskResult{
								{ID: g*1000 + rng.Intn(step+1), Worker: rng.Intn(4), Micros: int64(rng.Intn(1000))},
							}}
						case 5:
							rec = walRecord{Kind: walClose, Job: name}
						}
						if err := w.commit(rec); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			live := w.mirror()
			w.close()

			replayed, err := openWAL(dir, walOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer replayed.close()
			if got := replayed.mirror(); !bytes.Equal(got, live) {
				t.Fatalf("concurrent replay diverges:\nlive:     %s\nreplayed: %s", live, got)
			}
		})
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
