package service

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"grasp/internal/cluster"
	"grasp/internal/metrics"
	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/adapt"
	"grasp/internal/skel/engine"
	"grasp/internal/trace"
)

// Limits on job structure; wire-level work caps live in http.go.
const (
	maxStages     = 8
	maxCostFactor = 8
)

// Placements a job may declare. Per the paper's portability claim the
// semantics are identical: the same skeleton, the same adaptive engine,
// the same endpoints — only the execution substrate changes.
const (
	PlacementLocal   = "local"
	PlacementCluster = "cluster"
)

// Adaptation policies a job may declare.
const (
	// AdaptReactive is the paper's policy: recalibrate only after the
	// detector's threshold trips. The default.
	AdaptReactive = "reactive"
	// AdaptPredictive layers forecast-driven adaptation on top: the engine
	// reweights pre-breach when a worker's completion-time trend crosses
	// the margin, and the service forecasts the job's queue depth — boosting
	// its fair share (or requesting cluster nodes) under pressure and
	// shedding pushes with ErrOverloaded once the forecast exceeds the
	// admission bound.
	AdaptPredictive = "predictive"
)

// JobSpec are the per-job knobs a submitter may set.
type JobSpec struct {
	// Skeleton selects the dispatch topology: "farm" (default), "pipeline",
	// or "dmap". Every skeleton runs under the same engine contract — one
	// calibration ranking, one admission window, one detector rule, the
	// same cursor endpoints.
	Skeleton string `json:"skeleton,omitempty"`
	// Placement selects the execution substrate: "local" (default) runs on
	// the daemon's own worker slots; "cluster" dispatches to the remote
	// graspworker processes — those live at submission plus any that
	// register while the job runs (elastic membership).
	Placement string `json:"placement,omitempty"`
	// Share is the job's weight in the fair-share partition of the local
	// worker slots: a job with share 3 holds ~3× the workers of a
	// concurrent job with share 1, every slot is always owned by some job
	// (shares are relative, not caps), and the split rebalances live as
	// jobs come and go. Omitted: the daemon's default (1, or
	// -default-share). Explicit non-positive values are rejected.
	Share *float64 `json:"share,omitempty"`
	// Window is the job's bounded in-flight window (default the service's
	// DefaultWindow).
	Window int `json:"window,omitempty"`
	// ThresholdFactor sets Z = factor × warm-up mean (default the
	// service's).
	ThresholdFactor float64 `json:"threshold_factor,omitempty"`
	// WarmupTasks is how many completions seed the threshold (default the
	// service's).
	WarmupTasks int `json:"warmup,omitempty"`
	// MaxResults bounds how many completed results the job retains for
	// polling; older results are discarded and the results cursor advances
	// past them (default 100000, capped at 1000000). This is the retention
	// bound that keeps a long-lived job's memory finite.
	MaxResults int `json:"max_results,omitempty"`
	// Stages describes a pipeline job's stages (pipeline only, 2..8).
	Stages []StageSpec `json:"stages,omitempty"`
	// WaveSize caps a dmap job's decomposition wave (dmap only; default
	// the window).
	WaveSize int `json:"wave_size,omitempty"`
	// Alpha is a dmap job's EWMA re-weighting factor in (0, 1] (dmap
	// only; default 0.5).
	Alpha float64 `json:"alpha,omitempty"`
	// Adapt selects the adaptation policy: "reactive" (the default — the
	// paper's breach-driven recalibration only) or "predictive" (forecast
	// worker trends and the queue depth, reweight pre-breach, autoscale the
	// share, and shed overload with 429s). Omitted: the daemon's default.
	Adapt string `json:"adapt,omitempty"`
}

// StageSpec describes one stage of a pipeline job: each submitted task
// flows through every stage, performing its own work scaled by the
// stage's cost factor.
type StageSpec struct {
	Name string `json:"name,omitempty"`
	// CostFactor scales the task's declared work at this stage (default 1,
	// max 8). The per-execution sleep/spin caps still apply after scaling.
	CostFactor float64 `json:"cost_factor,omitempty"`
}

func (js JobSpec) withDefaults(cfg Config) JobSpec {
	if js.Share == nil {
		share := cfg.DefaultShare
		js.Share = &share
	}
	if js.Window <= 0 {
		js.Window = cfg.DefaultWindow
	}
	if js.ThresholdFactor <= 0 {
		js.ThresholdFactor = cfg.ThresholdFactor
	}
	if js.WarmupTasks <= 0 {
		js.WarmupTasks = cfg.WarmupTasks
	}
	if js.MaxResults <= 0 {
		js.MaxResults = cfg.MaxResults
	}
	if js.MaxResults > 1_000_000 {
		js.MaxResults = 1_000_000
	}
	if js.Adapt == "" {
		js.Adapt = cfg.DefaultAdapt
	}
	return js
}

// Validate rejects malformed job parameters up front — negative knobs and
// cross-skeleton parameter mixups are client bugs the HTTP layer reports
// as 400, never silently substituted with defaults.
func (js JobSpec) Validate() error {
	if js.Window < 0 {
		return fmt.Errorf("window must be non-negative, got %d", js.Window)
	}
	if js.WarmupTasks < 0 {
		return fmt.Errorf("warmup must be non-negative, got %d", js.WarmupTasks)
	}
	if js.MaxResults < 0 {
		return fmt.Errorf("max_results must be non-negative, got %d", js.MaxResults)
	}
	if js.ThresholdFactor < 0 {
		return fmt.Errorf("threshold_factor must be non-negative, got %g", js.ThresholdFactor)
	}
	if js.Share != nil && *js.Share <= 0 {
		return fmt.Errorf("share must be positive, got %g", *js.Share)
	}
	if !adapt.Known(js.Skeleton) {
		return fmt.Errorf("unknown skeleton %q (have %v)", js.Skeleton, adapt.Names())
	}
	switch js.Placement {
	case "", PlacementLocal, PlacementCluster:
	default:
		return fmt.Errorf("unknown placement %q (have local, cluster)", js.Placement)
	}
	switch js.Adapt {
	case "", AdaptReactive, AdaptPredictive:
	default:
		return fmt.Errorf("unknown adapt policy %q (have reactive, predictive)", js.Adapt)
	}
	switch js.Skeleton {
	case adapt.Pipeline:
		if len(js.Stages) < 2 || len(js.Stages) > maxStages {
			return fmt.Errorf("pipeline job needs 2..%d stages, got %d", maxStages, len(js.Stages))
		}
		for i, st := range js.Stages {
			if st.CostFactor < 0 || st.CostFactor > maxCostFactor {
				return fmt.Errorf("stage %d: cost_factor must be in [0, %d], got %g", i, maxCostFactor, st.CostFactor)
			}
		}
		if js.WaveSize != 0 || js.Alpha != 0 {
			return fmt.Errorf("wave_size/alpha apply to dmap jobs only")
		}
	case adapt.DMap:
		if len(js.Stages) != 0 {
			return fmt.Errorf("stages apply to pipeline jobs only")
		}
		if js.WaveSize < 0 {
			return fmt.Errorf("wave_size must be non-negative, got %d", js.WaveSize)
		}
		if js.Alpha < 0 || js.Alpha > 1 {
			return fmt.Errorf("alpha must be in [0, 1], got %g", js.Alpha)
		}
	default: // farm
		if len(js.Stages) != 0 || js.WaveSize != 0 || js.Alpha != 0 {
			return fmt.Errorf("stages/wave_size/alpha apply to pipeline/dmap jobs only")
		}
	}
	return nil
}

// skeleton names the job's topology for statuses and metrics.
func (js JobSpec) skeleton() string {
	if js.Skeleton == "" {
		return adapt.Farm
	}
	return js.Skeleton
}

// placement names the job's execution substrate for statuses and metrics.
func (js JobSpec) placement() string {
	if js.Placement == "" {
		return PlacementLocal
	}
	return js.Placement
}

// adapt names the job's adaptation policy for statuses and metrics.
func (js JobSpec) adapt() string {
	if js.Adapt == "" {
		return AdaptReactive
	}
	return js.Adapt
}

// predictive reports whether the job runs the forecast-driven policy.
func (js JobSpec) predictive() bool { return js.adapt() == AdaptPredictive }

// share returns the resolved fair-share weight (after withDefaults).
func (js JobSpec) share() float64 {
	if js.Share == nil || *js.Share <= 0 {
		return 1
	}
	return *js.Share
}

// TaskSpec is one unit of submitted work in wire form. SleepUS models
// IO-bound work (the closure sleeps), Spin models CPU-bound work (a busy
// loop); both may be combined. The closure returns the task ID.
type TaskSpec struct {
	ID      int     `json:"id"`
	Cost    float64 `json:"cost,omitempty"`
	SleepUS int64   `json:"sleep_us,omitempty"`
	Spin    int64   `json:"spin,omitempty"`
}

// task converts the wire form into a platform task. The TaskSpec rides
// along as Data so pipeline jobs can re-derive per-stage work.
func (ts TaskSpec) task() platform.Task {
	cost := ts.Cost
	if cost <= 0 {
		cost = 1
	}
	return platform.Task{ID: ts.ID, Cost: cost, Data: ts, Fn: func() any {
		// cluster.ExecWork is the one sleep+spin kernel, shared with remote
		// nodes so the two placements measure the same computation.
		cluster.ExecWork(ts.ClusterWork())
		return ts.ID
	}}
}

// ClusterWork implements cluster.WorkCarrier: the same sleep/spin
// parameters execute on a remote node that the closure above executes
// locally, which is what makes local and cluster placements semantically
// identical.
func (ts TaskSpec) ClusterWork() cluster.Work {
	return cluster.Work{Cost: ts.Cost, SleepUS: ts.SleepUS, Spin: ts.Spin}
}

// TaskResult is one completed task in wire form. Node names the cluster
// node that executed the task (empty for local placement).
type TaskResult struct {
	ID     int    `json:"id"`
	Worker int    `json:"worker"`
	Micros int64  `json:"micros"`
	Node   string `json:"node,omitempty"`
}

// Job states.
const (
	JobAccepting = "accepting"
	JobDraining  = "draining"
	JobDone      = "done"
	// JobRecovering is the limbo of a durable job replayed from the journal
	// whose runner has not been re-attached yet (a cluster job waiting for
	// its worker fleet to re-register). It accepts pushes — journaled, fed
	// to the engine at resume — and CloseInput, and its recovered results
	// serve the cursor API throughout.
	JobRecovering = "recovering"
)

// JobStatus is a point-in-time snapshot of a job, JSON-ready.
type JobStatus struct {
	Name      string `json:"name"`
	Skeleton  string `json:"skeleton"`
	Placement string `json:"placement"`
	State     string `json:"state"`
	// Share is the job's fair-share weight in the allocator's partition.
	Share float64 `json:"share"`
	// Workers counts the job's currently allocated workers — the live
	// membership, which grows and shrinks as competing jobs come and go
	// (local placement) or cluster nodes join and leave (cluster).
	Workers int `json:"workers"`
	// AllocatedWorkers lists the allocated worker indices.
	AllocatedWorkers []int `json:"allocated_workers,omitempty"`
	Submitted        int   `json:"submitted"`
	Completed        int   `json:"completed"`
	InFlight         int   `json:"in_flight"`
	Window           int   `json:"window"`
	ZMicros          int64 `json:"z_micros"`
	Breaches         int   `json:"breaches"`
	Recalibrations   int   `json:"recalibrations"`
	Failures         int   `json:"failures"`
	MaxInFlight      int   `json:"max_in_flight"`
	MakespanMicros   int64 `json:"makespan_micros"`
	// Adapt names the job's adaptation policy ("reactive" or "predictive").
	Adapt string `json:"adapt,omitempty"`
	// DetectorRatio is the detector's current stat/Z — how close the job is
	// to a reactive breach (0 until the threshold is installed and a round
	// has observations; >1 means breached).
	DetectorRatio float64 `json:"detector_ratio,omitempty"`
	// PredictiveRecals counts forecast-driven (pre-breach) recalibrations.
	PredictiveRecals int `json:"predictive_recals,omitempty"`
	// ForecastMicros maps worker index → the engine's current forecast of
	// that worker's next normalised completion time (predictive jobs only,
	// once each worker's forecaster is warm).
	ForecastMicros map[int]int64 `json:"forecast_micros,omitempty"`
	// QueueForecast is the service's forecast of the job's queue depth
	// (submitted − completed, one sampling step ahead; predictive only).
	QueueForecast float64 `json:"queue_forecast,omitempty"`
	// Shedding reports whether admission control is currently rejecting
	// pushes with 429 (predictive jobs whose queue-depth forecast exceeded
	// the bound).
	Shedding bool `json:"shedding,omitempty"`
	// Shed counts task batches rejected by admission control.
	Shed int `json:"shed,omitempty"`
	// EffectiveShare is the job's live fair-share weight after the
	// predictive autoscaler's adjustment (equal to Share when the policy is
	// off or the queue is calm).
	EffectiveShare float64 `json:"effective_share,omitempty"`
	// Lost counts accepted tasks that will never execute because the job's
	// run ended without them (every cluster node died mid-stream). Zero for
	// any job whose substrate survived.
	Lost int `json:"lost,omitempty"`
	// Nodes tallies a cluster job's executions per worker node (absent for
	// local placement).
	Nodes []cluster.NodeCount `json:"nodes,omitempty"`
}

// Job is one named streaming workload multiplexed onto the service. Its
// skeleton is opaque here: the job only ever touches the engine contract
// (the control channel, the breach hook, per-result callbacks).
type Job struct {
	name string
	svc  *Service
	spec JobSpec
	// pf is the job's execution platform; pool is its cluster view when the
	// placement is remote (nil for local jobs). Both are fixed at submission.
	pf      platform.Platform
	pool    *cluster.Pool
	in      rt.Chan
	control rt.Chan
	// det is constructed by the service and then owned by the skeleton's
	// coordinator; the job never touches it after submission (Status reads
	// zMicros instead).
	det  *monitor.Detector
	done chan struct{}
	// tr is the job's bounded timeline: the engine appends
	// dispatch/complete/threshold/recalibrate events, the service brackets
	// the calibrate/warmup/stream phases and records membership adaptations.
	// Shared clock: every event is stamped with the local runtime's Now.
	tr *trace.Log
	// clusterUnsub cancels the coordinator membership subscription feeding
	// node join/leave into this job (cluster placement only).
	clusterUnsub func()

	// sendMu guards the input channel's close against blocked senders:
	// pushers hold the read side — the input is a native channel, so
	// concurrent sends are safe, and concurrent pushers' journal commits
	// coalesce into shared fsync batches instead of serialising — while
	// CloseInput and recovery's resume hold the write side, so the channel
	// is never closed (and the journaled backlog never re-delivered) with
	// a push in flight.
	sendMu sync.RWMutex

	mu             sync.Mutex
	state          string
	submitted      int
	completed      int
	lost           int
	breaches       int
	recalibrations int
	zMicros        int64
	warmTotal      time.Duration
	warmSeen       int
	zInstalled     bool
	results        []TaskResult
	resultsBase    int // results dropped by the retention bound
	rep            engine.StreamReport

	// Predictive-policy observability and admission state (zero-valued for
	// reactive jobs): the engine's per-worker forecasts and trigger count
	// arrive through onForecast, the detector ratio is sampled in onResult,
	// and the service's forecast loop drives queueForecast/shedding/effShare.
	detRatio         float64
	forecasts        map[int]int64
	predictiveRecals int
	queueForecast    float64
	shedding         bool
	shed             int
	effShare         float64

	// Membership: workerSet is the desired membership — the allocator's
	// (or the cluster subscription's) view of this job's workers — and
	// engineSet is the membership as of the last successfully flushed
	// control update. A flush sends the diff between the two through
	// non-blocking sends (from the delta source and again on every
	// result), so the allocator is never blocked on a slow job and any
	// sequence of failed flushes still converges: the diff is recomputed
	// from the authoritative sets each time, never maintained
	// incrementally.
	workerSet      map[int]bool
	engineSet      map[int]bool
	memberWeights  map[int]float64 // initial weight per desired worker
	pendingWeights map[int]float64 // full re-normalised map to install

	// walClosed marks a recovering job whose input is durably closed (the
	// close happened before the crash, or while recovering); resume closes
	// the re-attached runner's input after re-delivering the pending tasks.
	walClosed bool
}

// Name returns the job's name.
func (j *Job) Name() string { return j.name }

// Trace returns the job's bounded event timeline.
func (j *Job) Trace() *trace.Log { return j.tr }

// Done is closed when the job's stream has fully drained.
func (j *Job) Done() <-chan struct{} { return j.done }

// Push submits tasks to the job, blocking under backpressure (the
// engine's in-flight window plus the input buffer are both bounded). It
// returns how many tasks were accepted. A job whose run finishes while a
// push is blocked — every cluster node died and the engine abandoned the
// stream — unblocks with an error instead of hanging the submitter: the
// runner no longer drains the input, so a plain channel send would never
// return.
func (j *Job) Push(specs []TaskSpec) (int, error) {
	j.sendMu.RLock()
	defer j.sendMu.RUnlock()
	j.mu.Lock()
	state := j.state
	if state != JobAccepting && state != JobRecovering || state == JobRecovering && j.walClosed {
		j.mu.Unlock()
		if state == JobRecovering {
			state = JobDraining // closed while recovering: draining to the caller
		}
		return 0, fmt.Errorf("service: job %q is %s, not accepting tasks", j.name, state)
	}
	// Admission control: while the queue-depth forecast is over the bound
	// the whole batch is rejected before it touches the journal or the
	// input channel — the caller gets 429 + Retry-After instead of a Push
	// blocked on backpressure, and accepted-task accounting stays exact.
	if j.shedding {
		j.shed++
		j.mu.Unlock()
		j.svc.reg.Counter("service_tasks_shed_total").Add(int64(len(specs)))
		return 0, fmt.Errorf("service: job %q queue-depth forecast over the admission bound: %w", j.name, ErrOverloaded)
	}
	j.mu.Unlock()
	// Journal the batch before a single task becomes observable: when a
	// durable service says "accepted", the tasks survive a crash. Recovery
	// re-delivers exactly the journaled-but-unacknowledged remainder. The
	// whole HTTP batch is one walTasks record, and concurrent pushers'
	// records group-commit under a single fsync, so durable ingest scales
	// with pusher concurrency instead of the disk's serial fsync rate.
	if w := j.svc.wal; w != nil {
		if err := w.commit(walRecord{Kind: walTasks, Job: j.name, Tasks: specs}); err != nil {
			return 0, fmt.Errorf("service: job %q: journal: %w", j.name, err)
		}
	}
	j.mu.Lock()
	j.submitted += len(specs)
	j.mu.Unlock()
	if state == JobRecovering {
		// No runner to feed yet: the batch lives in the journal's pending
		// set and resume delivers it with the rest of the backlog.
		j.svc.reg.Counter("service_tasks_submitted_total").Add(int64(len(specs)))
		return len(specs), nil
	}
	accepted, pushErr := j.feed(specs)
	if accepted < len(specs) {
		j.mu.Lock()
		j.submitted -= len(specs) - accepted
		j.mu.Unlock()
	}
	j.svc.reg.Counter("service_tasks_submitted_total").Add(int64(accepted))
	return accepted, pushErr
}

// feed delivers tasks into the job's input channel — the send half of
// Push, also used by recovery to re-deliver the journaled backlog.
// Callers hold sendMu (Push the read side, resume the write side).
func (j *Job) feed(specs []TaskSpec) (int, error) {
	accepted := 0
	var pushErr error
	if j.pool == nil {
		// Local placement: the platform's workers cannot all die, so the
		// runner provably drains the input until close — the plain blocking
		// send parks the goroutine for free under backpressure.
		for _, ts := range specs {
			j.in.Send(nil, ts.task()) // local channels ignore the ctx
			accepted++
		}
	} else {
		// Cluster placement: check for a finished job before every send, not
		// only when the buffer is full — after the runner abandons the stream
		// (all nodes dead) nothing drains j.in, so a send into remaining
		// buffer space would be accepted and silently lost. A task can still
		// slip in during the instant between check and send, but the loss
		// window is one task, not a buffer's worth.
		finished := func() bool {
			select {
			case <-j.done:
				return true
			default:
				return false
			}
		}
	send:
		for _, ts := range specs {
			t := ts.task()
			for {
				if finished() {
					pushErr = fmt.Errorf("service: job %q finished mid-push (workers lost); %d of %d tasks accepted",
						j.name, accepted, len(specs))
					break send
				}
				if j.in.TrySend(nil, t) {
					break
				}
				// Cluster tasks are at least network-round-trip grained, so a
				// millisecond poll costs nothing relative to the work while
				// keeping the all-nodes-dead wakeup bounded.
				time.Sleep(time.Millisecond)
			}
			accepted++
		}
	}
	return accepted, pushErr
}

// CloseInput ends submission; the job drains its in-flight tasks and then
// completes. Closing an already-closed job is an error for callers but
// harmless.
func (j *Job) CloseInput() error {
	j.sendMu.Lock()
	defer j.sendMu.Unlock()
	j.mu.Lock()
	if j.state == JobRecovering {
		// No runner to close yet: journal the close so resume performs it
		// after re-delivering the pending backlog (and so it survives
		// another crash before then).
		if j.walClosed {
			j.mu.Unlock()
			return fmt.Errorf("service: job %q already draining", j.name)
		}
		j.walClosed = true
		j.mu.Unlock()
		if w := j.svc.wal; w != nil {
			if err := w.commit(walRecord{Kind: walClose, Job: j.name}); err != nil {
				return fmt.Errorf("service: job %q: journal: %w", j.name, err)
			}
		}
		return nil
	}
	if state := j.state; state != JobAccepting {
		j.mu.Unlock()
		return fmt.Errorf("service: job %q already %s", j.name, state)
	}
	j.state = JobDraining
	j.mu.Unlock()
	// Journal before closing: the close is part of the durable history
	// (recovery of a closed job re-delivers its backlog and then drains).
	if w := j.svc.wal; w != nil {
		if err := w.commit(walRecord{Kind: walClose, Job: j.name}); err != nil {
			j.mu.Lock()
			j.state = JobAccepting
			j.mu.Unlock()
			return fmt.Errorf("service: job %q: journal: %w", j.name, err)
		}
	}
	j.in.Close(nil)
	return nil
}

// stageTask derives the work pipeline stage si performs on a flowing
// task: the submitted TaskSpec scaled by the stage's cost factor, with
// the per-execution work caps re-applied so a multi-stage job cannot
// amplify past them.
func (j *Job) stageTask(stage int, t platform.Task) platform.Task {
	ts, ok := t.Data.(TaskSpec)
	if !ok || stage >= len(j.spec.Stages) {
		return t
	}
	f := j.spec.Stages[stage].CostFactor
	if f <= 0 {
		f = 1
	}
	scaled := TaskSpec{
		ID:      ts.ID,
		Cost:    ts.Cost * f,
		SleepUS: capWork(int64(float64(ts.SleepUS)*f), maxSleepUS),
		Spin:    capWork(int64(float64(ts.Spin)*f), maxSpin),
	}
	return scaled.task()
}

// capWork clamps scaled work into [0, cap].
func capWork(v, max int64) int64 {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}

// applyDelta records a membership change — added workers with their
// initial weights, removed workers, and optionally a full re-normalised
// weight map covering the new set — in the desired membership and tries
// to flush the engine's view up to date. Delta sources (the allocator's
// rebalance callback, the cluster membership subscription) call this
// synchronously; it never blocks.
func (j *Job) applyDelta(added []engine.Member, removed []int, weights map[int]float64) {
	j.mu.Lock()
	if j.state == JobDone {
		// An in-flight membership event can outlive the unsubscribe; a
		// finished job must not grow phantom workers or resurrect its
		// deleted gauge.
		j.mu.Unlock()
		return
	}
	for _, m := range added {
		j.workerSet[m.Worker] = true
		j.memberWeights[m.Worker] = m.Weight
	}
	for _, w := range removed {
		if len(j.workerSet) == 1 && j.workerSet[w] {
			// Mirror the engine's floor: a graceful removal that would
			// leave no worker is refused there, so the status view keeps
			// the last worker too (a truly dead substrate ends the job
			// through the crash path shortly anyway).
			continue
		}
		delete(j.workerSet, w)
		delete(j.memberWeights, w)
	}
	if weights != nil {
		j.pendingWeights = weights
	}
	workers := int64(len(j.workerSet))
	j.flushDeltaLocked()
	j.mu.Unlock()
	if len(added) > 0 || len(removed) > 0 {
		j.tr.Append(trace.Event{
			At: j.svc.l.Now(), Kind: trace.KindAdapt,
			Msg:   fmt.Sprintf("membership +%d -%d", len(added), len(removed)),
			Value: float64(workers),
		})
	}
	j.svc.reg.Gauge("service_job_workers_" + metrics.LabelSafe(j.name)).Set(workers)
}

// flushDeltaLocked tries to bring the engine's membership up to the
// desired one: the Update carries the diff between workerSet and
// engineSet, recomputed fresh each call so interleaved failed flushes can
// never strand a stale delta. TrySend never blocks; on failure (control
// buffer full) nothing changes and the next result's flush retries — the
// coordinator drains control on every message, so a job with traffic
// converges promptly.
func (j *Job) flushDeltaLocked() {
	var u engine.Update
	for w := range j.workerSet {
		if !j.engineSet[w] {
			u.Add = append(u.Add, engine.Member{Worker: w, Weight: j.memberWeights[w]})
		}
	}
	for w := range j.engineSet {
		if !j.workerSet[w] {
			u.Remove = append(u.Remove, w)
		}
	}
	u.Weights = j.pendingWeights
	if len(u.Add) == 0 && len(u.Remove) == 0 && u.Weights == nil {
		return
	}
	sort.Slice(u.Add, func(a, b int) bool { return u.Add[a].Worker < u.Add[b].Worker })
	sort.Ints(u.Remove)
	if !j.control.TrySend(nil, u) {
		return
	}
	j.engineSet = make(map[int]bool, len(j.workerSet))
	for w := range j.workerSet {
		j.engineSet[w] = true
	}
	j.pendingWeights = nil
	j.svc.reg.Counter("service_membership_updates_total").Inc()
}

// onAllocDelta adapts the fair-share allocator's rebalance callback: the
// added workers get weights from the cached calibration ranking, and the
// whole new allocation's re-normalised weight map rides along so dispatch
// shares stay consistent after the membership change.
func (j *Job) onAllocDelta(added, removed []int) {
	gone := make(map[int]bool, len(removed))
	for _, w := range removed {
		gone[w] = true
	}
	j.mu.Lock()
	full := make([]int, 0, len(j.workerSet)+len(added))
	for w := range j.workerSet {
		if !gone[w] {
			full = append(full, w)
		}
	}
	j.mu.Unlock()
	for _, w := range added {
		full = append(full, w)
	}
	sort.Ints(full)
	weights := j.svc.ranking.Weights(full)
	members := make([]engine.Member, len(added))
	for i, w := range added {
		members[i] = engine.Member{Worker: w, Weight: weights[w]}
	}
	j.applyDelta(members, removed, weights)
}

// onResult records a completion and, during warm-up, accumulates times
// toward the live threshold installation.
func (j *Job) onResult(res platform.Result) {
	j.svc.reg.Counter("service_tasks_completed_total").Inc()
	j.svc.hTaskLatency.ObserveDuration(res.Time)
	node := ""
	if j.pool != nil {
		node = j.pool.NodeName(res.Worker)
	}
	tr := TaskResult{
		ID:     res.Task.ID,
		Worker: res.Worker,
		Micros: res.Time.Microseconds(),
		Node:   node,
	}
	// The acknowledgement is journaled (and fsynced) before the result
	// becomes poller-visible: once a client's cursor moves past a result,
	// no crash can make the service deliver that task again — the replayed
	// pending set no longer contains it. Each job's coordinator commits its
	// acks serially, but acks from different jobs — and acks racing pushes —
	// coalesce through the wal's group commit, so a busy daemon pays one
	// fsync for a convoy of acknowledgements. A latched journal error does
	// not suppress publication (live pollers keep working; new accepts fail
	// loudly instead).
	if w := j.svc.wal; w != nil {
		w.commit(walRecord{Kind: walResults, Job: j.name, Results: []TaskResult{tr}})
	}
	j.mu.Lock()
	j.completed++
	j.results = append(j.results, tr)
	// Enforce the retention bound with slack so the copy amortises: trim
	// back to MaxResults once the overshoot reaches a quarter of it.
	if slack := j.spec.MaxResults / 4; len(j.results) > j.spec.MaxResults+max(slack, 1) {
		drop := len(j.results) - j.spec.MaxResults
		j.resultsBase += drop
		j.results = append(j.results[:0:0], j.results[drop:]...)
	}
	var install time.Duration
	if !j.zInstalled {
		j.warmTotal += res.Time
		j.warmSeen++
		if j.warmSeen >= j.spec.WarmupTasks {
			mean := j.warmTotal / time.Duration(j.warmSeen)
			install = time.Duration(float64(mean) * j.spec.ThresholdFactor)
			if install <= 0 {
				install = time.Microsecond
			}
			j.zInstalled = true
			j.zMicros = install.Microseconds()
		}
	}
	// Retry any membership delta an earlier full control buffer deferred.
	j.flushDeltaLocked()
	if j.spec.predictive() && j.zInstalled {
		// The detector belongs to the coordinator and onResult runs inside
		// it, so reading the ratio here is the one safe place to surface
		// "how close to a breach" without racing Observe.
		if r := j.det.Ratio(); r == r { // filter NaN (no round yet)
			j.detRatio = r
		}
	}
	j.mu.Unlock()
	if install > 0 {
		// The coordinator polls the control channel between events; TrySend
		// from inside OnResult (which runs in the coordinator) cannot block.
		j.control.TrySend(nil, engine.Update{Z: install, ResetDetector: true})
		j.svc.reg.Counter("service_thresholds_installed_total").Inc()
		// The warm-up phase ends at threshold installation: from here on the
		// detector is armed and breaches can recalibrate the job.
		j.tr.Append(trace.Event{
			At: j.svc.l.Now(), Kind: trace.KindPhaseEnd, Msg: "warmup",
			Dur: install,
		})
		j.svc.log.Info("job threshold installed",
			"job", j.name, "z", install, "warmup_tasks", j.spec.WarmupTasks)
	}
}

// onForecast records the engine's per-worker completion-time forecasts
// (predictive policy only). It runs in the skeleton's coordinator, once
// per completion after a worker's forecaster warms; triggered marks the
// observation that fired a pre-breach reweight.
func (j *Job) onForecast(worker int, forecast time.Duration, triggered bool) {
	j.mu.Lock()
	if j.forecasts == nil {
		j.forecasts = make(map[int]int64)
	}
	j.forecasts[worker] = forecast.Microseconds()
	if triggered {
		j.predictiveRecals++
	}
	j.mu.Unlock()
	if triggered {
		j.svc.reg.Counter("service_predictive_recals_total").Inc()
	}
}

// onRecalibrate counts the breach and defers to the skeleton's own
// recalibration default (reweighting for farm/dmap, remapping for
// pipelines).
func (j *Job) onRecalibrate(engine.Breach) (engine.Update, bool) {
	j.svc.reg.Counter("service_breaches_total").Inc()
	j.svc.reg.Counter("service_recalibrations_total").Inc()
	j.mu.Lock()
	j.breaches++
	j.recalibrations++
	j.mu.Unlock()
	return engine.Update{}, false
}

// finish stores the final report and marks the job done. The runner no
// longer drains the input after it returns, so anything still buffered
// there was accepted by a Push but will never execute: drain and count it
// as lost — together with the engine's Remaining — rather than leaving
// submitted > completed unexplained forever. Push checks j.done before
// every send, so after this drain at most one racing task can slip
// through unaccounted.
func (j *Job) finish(rep engine.StreamReport) {
	j.mu.Lock()
	j.rep = rep
	j.state = JobDone
	j.mu.Unlock()
	// Return the job's workers to the pool before announcing completion:
	// the allocator's rebalance hands them to the surviving jobs (work
	// conservation), and a waiter observing Done must already see the
	// post-rebalance allocations. A cluster job instead stops watching
	// node membership.
	if j.clusterUnsub != nil {
		j.clusterUnsub()
	}
	if j.pool == nil {
		j.svc.alloc.Leave(j.name)
	}
	close(j.done)
	lost := len(rep.Remaining)
	for {
		_, ok, polled := j.in.TryRecv(nil)
		if !polled || !ok {
			break
		}
		lost++
	}
	j.mu.Lock()
	j.lost = lost
	completed := j.completed
	j.mu.Unlock()
	j.tr.Append(trace.Event{At: j.svc.l.Now(), Kind: trace.KindPhaseEnd, Msg: "stream"})
	j.svc.log.Info("job finished",
		"job", j.name, "completed", completed, "lost", lost,
		"failures", rep.Failures, "makespan", rep.Makespan)
	// Journal completion last: the done record clears the job's pending
	// set (lost tasks are lost, not redelivered) and marks it a husk for
	// recovery. A crash before this lands replays the job as an unfinished
	// empty stream, which re-runs this same path and converges.
	if w := j.svc.wal; w != nil {
		w.commit(walRecord{Kind: walDone, Job: j.name, Lost: lost})
	}
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	allocated := make([]int, 0, len(j.workerSet))
	for w := range j.workerSet {
		allocated = append(allocated, w)
	}
	sort.Ints(allocated)
	st := JobStatus{
		Name:             j.name,
		Skeleton:         j.spec.skeleton(),
		Placement:        j.spec.placement(),
		State:            j.state,
		Share:            j.spec.share(),
		Workers:          len(allocated),
		AllocatedWorkers: allocated,
		Submitted:        j.submitted,
		Completed:        j.completed,
		InFlight:         j.submitted - j.completed,
		Window:           j.spec.Window,
		ZMicros:          j.zMicros,
		Breaches:         j.breaches,
		Recalibrations:   j.recalibrations,
		Adapt:            j.spec.adapt(),
		DetectorRatio:    j.detRatio,
		PredictiveRecals: j.predictiveRecals,
		QueueForecast:    j.queueForecast,
		Shedding:         j.shedding,
		Shed:             j.shed,
		EffectiveShare:   j.effShare,
	}
	if len(j.forecasts) > 0 {
		st.ForecastMicros = make(map[int]int64, len(j.forecasts))
		for w, f := range j.forecasts {
			st.ForecastMicros[w] = f
		}
	}
	if j.state == JobDone {
		st.Failures = j.rep.Failures
		st.MaxInFlight = j.rep.MaxInFlight
		st.MakespanMicros = j.rep.Makespan.Microseconds()
		st.Lost = j.lost
		// Breaches/Recalibrations stay the job's own breach-driven counts:
		// the engine report additionally counts control updates (the warm-up
		// threshold install), which would make the numbers jump at
		// completion for jobs that never adapted.
	}
	if j.pool != nil {
		st.Nodes = j.pool.NodeCounts()
	}
	return st
}

// Results returns completed results from cursor after onward plus the
// next cursor value. Cursors predating the retention bound are advanced
// to the oldest retained result, so a slow poller loses trimmed results
// but never stalls.
func (j *Job) Results(after int) ([]TaskResult, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if after < j.resultsBase {
		after = j.resultsBase
	}
	if after > j.resultsBase+len(j.results) {
		after = j.resultsBase + len(j.results)
	}
	out := append([]TaskResult(nil), j.results[after-j.resultsBase:]...)
	return out, after + len(out)
}

// Report returns the final engine report (zero until the job is done).
func (j *Job) Report() engine.StreamReport {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rep
}
