// Package service multiplexes many concurrent named streaming jobs onto one
// shared runtime and platform — the layer that turns the adaptive skeletons
// from batch programs into a long-running system serving continuous
// traffic.
//
// The service is skeleton-agnostic: a job declares its skeleton (farm,
// pipeline, dmap) and the adapt registry resolves it to an engine.Runner;
// from here on the service only ever touches the engine contract. Each job
// is one runner fed through a bounded channel, so submission backpressure
// propagates all the way to the caller. The service calibrates the
// platform once (Algorithm 1 over spin probes) and the one ranking's
// dispatch weights feed every skeleton type — chunk shares for farms,
// decomposition blocks for dmaps, stage mappings for pipelines. Per-job
// thresholds are derived from each job's own warm-up tasks and installed
// live through the engine's control channel, and detector breaches
// re-calibrate the job in place (reweighting or remapping, per skeleton)
// without draining the stream.
//
// Worker membership is elastic: the internal/alloc fair-share allocator
// partitions the local worker slots among the live jobs by their `share`
// weights (work-conserving — a lone job owns the whole platform, and
// slots freed by a finishing job flow to the survivors), publishing
// membership deltas that reach each running skeleton through the engine's
// control channel with weights drawn from the cached calibration ranking.
// Cluster jobs get the same elasticity from the coordinator's node
// events: a graspworker that registers mid-stream joins running jobs'
// memberships, its register-time benchmark sample becoming its initial
// dispatch weight.
//
// With a DataDir configured the service is crash-recoverable: every
// externally visible mutation commits to a write-ahead journal before its
// effects are observable. The commit path is a group-commit wal —
// concurrent committers coalesce into bounded batches, each appended
// through one write syscall and covered by one fsync, with the leader
// delivering the shared result to every member — so durable ingest
// throughput scales with request concurrency instead of the disk's
// serial fsync rate, under the unchanged contract that a nil commit
// means the record is fsynced and storage errors latch the wal
// fail-stop.
//
// The service runs only on the real runtime (rt.Local): it exists to serve
// actual traffic, while the simulator remains the domain of the experiment
// harness.
package service

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"grasp/internal/alloc"
	"grasp/internal/calibrate"
	"grasp/internal/cluster"
	"grasp/internal/metrics"
	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/skel/adapt"
	"grasp/internal/skel/engine"
	"grasp/internal/trace"
)

// Config parameterises a Service.
type Config struct {
	// Workers is the number of platform worker slots (default GOMAXPROCS,
	// minimum 2 so adaptation has somewhere to shift work).
	Workers int
	// DefaultWindow is the per-job in-flight window when a job does not set
	// its own (default 2× Workers).
	DefaultWindow int
	// ThresholdFactor sets each job's Z = factor × warm-up mean task time
	// (default 4, the core layer's default).
	ThresholdFactor float64
	// WarmupTasks is how many completions a job observes before deriving
	// its threshold (default 2× Workers).
	WarmupTasks int
	// ProbeSpin is the busy-loop iteration count of a calibration probe
	// (default 50000).
	ProbeSpin int
	// MaxResults is the default per-job result-retention bound when a job
	// does not set its own (default 100000, capped at 1000000). This is the
	// knob that keeps a long-lived daemon's memory finite.
	MaxResults int
	// DefaultShare is the fair-share weight a job gets when its spec omits
	// `share` (default 1). Shares partition the local worker slots among
	// concurrent jobs: a job with share 3 holds ~3× the workers of a
	// share-1 job, and the split rebalances live as jobs come and go.
	DefaultShare float64
	// Cluster, when non-nil, lets jobs declare `placement: cluster`: their
	// tasks execute on remote graspworker processes registered with this
	// coordinator instead of the local platform.
	Cluster *cluster.Coordinator
	// DataDir, when non-empty, makes the service durable: every accepted
	// mutation is journaled (write-ahead, fsynced) under this directory, and
	// Open replays it — resuming unfinished jobs at their last acknowledged
	// result and re-delivering un-acked tasks exactly once. Empty: the
	// service is purely in-memory (the pre-durability behaviour).
	DataDir string
	// MaxJournalBytes triggers snapshot compaction once the journal outgrows
	// it (default 8MB).
	MaxJournalBytes int64
	// CommitLinger is how long the group-commit leader waits for more
	// committers to join each batch before flushing (default 0 — flush
	// immediately; a batch still coalesces everything that queued while the
	// previous fsync was in flight). A small linger trades single-commit
	// latency for fewer fsyncs under light concurrency.
	CommitLinger time.Duration
	// CommitMaxBatch caps how many journal records one group-commit flush
	// coalesces into a single write + fsync (default 256). 1 reproduces the
	// serial one-fsync-per-record discipline — the benchmark baseline mode.
	CommitMaxBatch int
	// Logger receives job lifecycle events as structured records carrying
	// per-job fields (default: discard).
	Logger *slog.Logger
	// TraceCap bounds each job's trace ring: the per-job timeline retains
	// at most this many events, overwriting the oldest and counting the
	// drops (default 4096).
	TraceCap int
	// DefaultAdapt selects the adaptation policy for jobs whose spec omits
	// `adapt`: "reactive" (the default — the paper's breach-driven policy)
	// or "predictive".
	DefaultAdapt string
	// PredictMargin is the predictive policy's engine trigger: a worker is
	// demoted pre-breach when its forecast completion time exceeds margin ×
	// the rest of the fleet's mean (default 1.5).
	PredictMargin float64
	// ShedFactor arms admission control for predictive jobs: pushes are
	// shed with ErrOverloaded (HTTP 429 + Retry-After) once the job's
	// queue-depth forecast exceeds ShedFactor × its window, and resume at
	// half that (hysteresis). Zero defaults to 2; negative disables
	// shedding.
	ShedFactor float64
	// ShedRetryAfter is the Retry-After hint returned with a 429 (default
	// 1s).
	ShedRetryAfter time.Duration
	// ForecastEvery is the predictive queue-depth sampling interval
	// (default 20ms).
	ForecastEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers < 2 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 2 {
			c.Workers = 2
		}
	}
	if c.DefaultWindow <= 0 {
		c.DefaultWindow = 2 * c.Workers
	}
	if c.ThresholdFactor <= 0 {
		c.ThresholdFactor = 4
	}
	if c.WarmupTasks <= 0 {
		c.WarmupTasks = 2 * c.Workers
	}
	if c.ProbeSpin <= 0 {
		c.ProbeSpin = 50000
	}
	if c.MaxResults <= 0 {
		c.MaxResults = 100_000
	}
	if c.MaxResults > 1_000_000 {
		c.MaxResults = 1_000_000
	}
	if c.DefaultShare <= 0 {
		c.DefaultShare = 1
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 4096
	}
	if c.DefaultAdapt == "" {
		c.DefaultAdapt = AdaptReactive
	}
	if c.PredictMargin <= 1 {
		c.PredictMargin = 1.5
	}
	if c.ShedFactor == 0 {
		c.ShedFactor = 2
	}
	if c.ShedRetryAfter <= 0 {
		c.ShedRetryAfter = time.Second
	}
	if c.ForecastEvery <= 0 {
		c.ForecastEvery = 20 * time.Millisecond
	}
	return c
}

// Service owns the shared runtime, platform, calibration cache, and job
// table. Create one with New; it is safe for concurrent use.
type Service struct {
	cfg   Config
	l     *rt.Local
	pf    platform.Platform
	reg   *metrics.Registry
	log   *slog.Logger
	alloc *alloc.Allocator

	// hTaskLatency is the task-latency distribution across every job —
	// resolved once so onResult (the per-completion hot path) never takes
	// the registry's name-lookup path.
	hTaskLatency *metrics.Histogram

	// wal is the write-ahead journal when the service is durable (nil
	// otherwise); closed signals shutdown to background recovery waiters.
	wal       *wal
	closed    chan struct{}
	closeOnce sync.Once

	mu      sync.Mutex
	jobs    map[string]*Job
	pending map[string]bool // names reserved by in-flight Submits

	calOnce sync.Once
	ranking calibrate.Ranking
	calErr  error
}

// New builds a service over a fresh local runtime and platform. The
// fair-share allocator partitions the platform's worker slots among the
// live local jobs, so no job assumes it owns the whole platform. New
// panics if the durable layer cannot open; daemons configuring a DataDir
// should call Open and handle the error.
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("service: %v", err))
	}
	return s
}

// Open builds a service, recovering durable state when cfg.DataDir is
// set: the journal under it is replayed, done jobs reappear with their
// retained results (pollers' cursors stay valid across the restart),
// unfinished jobs resume — local ones immediately, cluster ones as soon
// as a worker node is live again — and every accepted-but-unacknowledged
// task is re-delivered. With no DataDir, Open never fails.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	l := rt.NewLocal()
	slots := make([]int, cfg.Workers)
	for i := range slots {
		slots[i] = i
	}
	s := &Service{
		cfg:     cfg,
		l:       l,
		pf:      platform.NewLocalPlatform(l, cfg.Workers),
		reg:     metrics.NewRegistry(),
		log:     cfg.Logger,
		alloc:   alloc.New(slots),
		closed:  make(chan struct{}),
		jobs:    make(map[string]*Job),
		pending: make(map[string]bool),
	}
	s.hTaskLatency = s.reg.Histogram("service_task_latency_seconds", metrics.DefDurationBuckets)
	if cfg.DataDir == "" {
		return s, nil
	}
	w, err := openWAL(cfg.DataDir, walOptions{
		maxBytes: cfg.MaxJournalBytes,
		linger:   cfg.CommitLinger,
		maxBatch: cfg.CommitMaxBatch,
	})
	if err != nil {
		return nil, err
	}
	w.hFsync = s.reg.Histogram("service_journal_fsync_seconds", metrics.DefDurationBuckets)
	w.hBatch = s.reg.Histogram("service_commit_batch_size", metrics.BatchBuckets)
	w.log = cfg.Logger
	s.wal = w
	// The coordinator's token ceilings must be restored before it serves
	// any cluster traffic: a gen or dispatch id minted below the pre-crash
	// ceiling could collide with an id a surviving worker still holds.
	if co := cfg.Cluster; co != nil {
		if st := w.clusterState(); st != nil {
			co.Restore(*st)
		}
		co.SetPersist(func(st cluster.RegistryState) {
			// Best-effort after a latched wal error; the registry keeps
			// serving and the loss surfaces on the next Submit/Push.
			w.commit(walRecord{Kind: walCluster, Cluster: &st})
		})
	}
	for _, rj := range w.recoveredJobs() {
		s.recoverJob(rj)
	}
	return s, nil
}

// Close flushes the durable layer — a final snapshot folding the journal
// away, fsynced — and stops background recovery. It does not wait for
// running jobs; their un-acked tasks are in the journal and resume on the
// next Open. This is the graceful-shutdown path graspd takes on SIGTERM.
func (s *Service) Close() error {
	s.closeOnce.Do(func() { close(s.closed) })
	if s.wal == nil {
		return nil
	}
	return s.wal.close()
}

// Allocator exposes the fair-share allocator partitioning the local
// worker slots (for tests and experiments).
func (s *Service) Allocator() *alloc.Allocator { return s.alloc }

// Metrics exposes the service's operational counters.
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// Workers returns the platform worker count.
func (s *Service) Workers() int { return s.cfg.Workers }

// calibration runs Algorithm 1 once per service lifetime and caches the
// ranking; every job after the first reuses the cached result — the
// "per-platform calibration reuse" that amortises probing across jobs.
func (s *Service) calibration() (calibrate.Ranking, error) {
	first := false
	s.calOnce.Do(func() {
		first = true
		spin := s.cfg.ProbeSpin
		probe := platform.Task{ID: -1, Cost: float64(spin), Fn: func() any {
			cluster.Spin(int64(spin)) // the shared spin kernel: see cluster.Spin
			return spin
		}}
		done := make(chan struct{})
		s.l.Go("service.calibrate", func(c rt.Ctx) {
			defer close(done)
			out, err := calibrate.Run(s.pf, c, calibrate.Options{
				Strategy: calibrate.TimeOnly,
				Probes:   []platform.Task{probe},
			})
			if err != nil {
				s.calErr = err
				return
			}
			s.ranking = out.Ranking
		})
		<-done
		s.reg.Counter("service_calibrations_total").Inc()
	})
	if !first {
		s.reg.Counter("service_calibration_reuse_total").Inc()
	}
	return s.ranking, s.calErr
}

// Sentinel errors callers (the HTTP layer) map onto status codes.
var (
	// ErrJobExists reports a duplicate job name.
	ErrJobExists = errors.New("job already exists")
	// ErrInvalid reports a malformed submission.
	ErrInvalid = errors.New("invalid request")
	// ErrNoCluster reports a cluster placement the service cannot satisfy:
	// no coordinator configured, or no live worker nodes.
	ErrNoCluster = errors.New("cluster placement unavailable")
	// ErrOverloaded reports a push shed by admission control: the job's
	// queue-depth forecast is over the bound, so accepting the batch would
	// stall the caller on backpressure. The HTTP layer maps it to 429 with
	// a Retry-After hint; retry after the queue drains.
	ErrOverloaded = errors.New("job overloaded")
)

// RetryAfter is the hint returned alongside ErrOverloaded — how long a
// shed caller should wait before retrying.
func (s *Service) RetryAfter() time.Duration { return s.cfg.ShedRetryAfter }

// Cluster returns the coordinator serving `placement: cluster` jobs (nil
// when the daemon runs without one).
func (s *Service) Cluster() *cluster.Coordinator { return s.cfg.Cluster }

// clusterWeights ranks a pool's execution slots by their nodes'
// register-time benchmark speeds — Algorithm 1's ranking step applied to
// reported benchmarks instead of fresh probes: each node's speed becomes
// a predicted probe time, so a node twice as fast starts with twice the
// dispatch share. Round-trip observations then reweight live via the
// engine. liveGens restricts the ranking to current registrations (nil
// means all members): the pool is append-only across loss/rejoin cycles,
// and normalising over dead generations' slots would dilute the live
// workers' weights a little more with every churn cycle.
func clusterWeights(members []cluster.PoolMember, liveGens map[string]int64) map[int]float64 {
	var workers []int
	var samples []calibrate.Sample
	const refOps = 1e6 // nominal probe size; only ratios matter for weights
	for i, m := range members {
		if liveGens != nil {
			if gen, ok := liveGens[m.ID]; !ok || gen != m.Gen {
				continue
			}
		}
		speed := m.SpeedOPS
		if speed <= 0 {
			speed = 1
		}
		workers = append(workers, i)
		samples = append(samples, calibrate.Sample{
			Worker:    i,
			Time:      time.Duration(refOps / speed * float64(time.Second)),
			ProbeCost: refOps,
		})
	}
	return calibrate.Rank(samples, calibrate.TimeOnly).Weights(workers)
}

// clusterPlatform snapshots the live worker nodes into a per-job platform
// plus dispatch weights from their register-time benchmarks. The pool is
// growable: watchCluster later appends slots for nodes that register
// while the job runs.
func (s *Service) clusterPlatform() (*cluster.Pool, []int, map[int]float64, error) {
	coord := s.cfg.Cluster
	if coord == nil {
		return nil, nil, nil, fmt.Errorf("service: no cluster coordinator: %w", ErrNoCluster)
	}
	nodes := coord.Live()
	if len(nodes) == 0 {
		return nil, nil, nil, fmt.Errorf("service: no live worker nodes: %w", ErrNoCluster)
	}
	pool := cluster.NewPool(coord, s.l, nodes)
	members := pool.Members() // one worker index per node execution slot
	workers := make([]int, len(members))
	for i := range members {
		workers[i] = i
	}
	s.reg.Counter("service_cluster_calibrations_total").Inc()
	return pool, workers, clusterWeights(members, nil), nil
}

// liveGens maps node id → generation for the coordinator's live set.
func liveGens(nodes []cluster.NodeInfo) map[string]int64 {
	out := make(map[string]int64, len(nodes))
	for _, ni := range nodes {
		out[ni.ID] = ni.Gen
	}
	return out
}

// watchCluster subscribes a running cluster job to coordinator membership
// events, making node join symmetric with the node-loss path: a node that
// registers mid-stream is admitted into the job's pool (its register-time
// benchmark sample becoming its initial weight, alongside a re-normalised
// map for the whole membership), and a node that dies, leaves, or is
// superseded has its slots gracefully removed — on top of the ErrNodeLost
// failure path that already retires slots with work in flight.
func (s *Service) watchCluster(j *Job, coord *cluster.Coordinator, pool *cluster.Pool) {
	// admitMu serialises the event-dispatcher and snapshot-replay admit
	// paths: the weight map is recomputed from the pool *after* each
	// admission, so the last delta's full map always covers every slot
	// admitted so far — two racing admits could otherwise overwrite the
	// pending map with a stale one missing the other's slots.
	var admitMu sync.Mutex
	admit := func(ni cluster.NodeInfo) {
		admitMu.Lock()
		defer admitMu.Unlock()
		added := pool.Admit(ni)
		if len(added) == 0 {
			return
		}
		weights := clusterWeights(pool.Members(), liveGens(coord.Live()))
		members := make([]engine.Member, len(added))
		for i, w := range added {
			members[i] = engine.Member{Worker: w, Weight: weights[w]}
		}
		j.applyDelta(members, nil, weights)
		s.reg.Counter("service_cluster_joins_total").Inc()
	}
	j.clusterUnsub = coord.Subscribe(func(ev cluster.NodeEvent) {
		select {
		case <-j.done:
			return
		default:
		}
		switch ev.Kind {
		case cluster.EventUp:
			admit(ev.Node)
		case cluster.EventDown:
			// Under admitMu so a down-event cannot slip between another
			// path's Admit and its applyDelta — the removal would land on
			// a workerSet that does not hold the slots yet, and no later
			// event would ever retire them.
			admitMu.Lock()
			if slots := pool.SlotsOf(ev.Node.ID, ev.Node.Gen); len(slots) > 0 {
				j.applyDelta(nil, slots, nil)
			}
			admitMu.Unlock()
		}
	})
	// Close the snapshot→subscribe gap: admit anything that registered in
	// between (Admit deduplicates, so replaying the snapshot is free).
	for _, ni := range coord.Live() {
		admit(ni)
	}
}

// Submit registers a new named job and starts its skeleton's engine
// runner. The name must be unused. Local jobs join the fair-share
// allocator — their worker set is their share of the platform, not the
// whole of it, and it rebalances live as jobs come and go; cluster jobs
// start on the nodes live at submission and gain nodes that register
// later through the coordinator membership subscription.
func (s *Service) Submit(name string, spec JobSpec) (*Job, error) {
	if name == "" {
		return nil, fmt.Errorf("service: job name must be non-empty: %w", ErrInvalid)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("service: job %q: %v: %w", name, err, ErrInvalid)
	}
	explicitWindow := spec.Window > 0
	spec = spec.withDefaults(s.cfg)

	j := &Job{
		name:  name,
		svc:   s,
		spec:  spec,
		state: JobAccepting,
		done:  make(chan struct{}),
		tr:    trace.NewBounded(s.cfg.TraceCap),
	}

	// Reserve the name without publishing the job: a half-constructed Job
	// must never be reachable through s.Job (a concurrent Push would find
	// a nil input channel), and a duplicate submission must never disturb
	// running jobs' allocations.
	s.mu.Lock()
	if _, dup := s.jobs[name]; dup || s.pending[name] {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: job %q: %w", name, ErrJobExists)
	}
	s.pending[name] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.pending, name)
		s.mu.Unlock()
	}()

	if err := s.startRunner(j, explicitWindow); err != nil {
		return nil, fmt.Errorf("service: job %q: %w", name, err)
	}

	// Journal the creation before the job becomes reachable: a crash after
	// Submit returns must replay it. On a durable failure the just-started
	// runner is drained back out (no tasks ever entered it).
	if s.wal != nil {
		if err := s.wal.commit(walRecord{Kind: walCreate, Job: name, Spec: &j.spec}); err != nil {
			j.mu.Lock()
			j.state = JobDraining
			j.mu.Unlock()
			j.in.Close(nil)
			return nil, fmt.Errorf("service: job %q: journal: %w", name, err)
		}
	}

	// Publish the fully constructed job.
	s.mu.Lock()
	s.jobs[name] = j
	s.mu.Unlock()

	s.reg.Counter("service_jobs_total").Inc()
	s.reg.Counter("service_jobs_" + spec.skeleton() + "_total").Inc()
	s.reg.Counter("service_jobs_placement_" + spec.placement() + "_total").Inc()
	s.log.Info("job submitted",
		"job", name, "skeleton", spec.skeleton(), "placement", spec.placement(),
		"window", j.spec.Window, "share", j.spec.share())
	return j, nil
}

// startRunner takes a constructed (but unpublished) Job through placement
// resolution and launches its engine runner — the part of submission
// shared by Submit and crash recovery. explicitWindow marks the window as
// caller-chosen (recovered specs always are: they were defaulted before
// journaling), suppressing the cluster auto-expansion.
func (s *Service) startRunner(j *Job, explicitWindow bool) error {
	name := j.name

	// Resolve the declared skeleton to its engine runner. The Weighted
	// chunk policy is what makes the calibrated weights (and every live
	// re-weighting) actually shift a farm's dispatch shares; dmap and
	// pipeline consume the same weights through their own topologies.
	run, err := adapt.New(adapt.Spec{
		Skeleton:  j.spec.Skeleton,
		Chunk:     sched.Weighted{},
		WaveSize:  j.spec.WaveSize,
		Alpha:     j.spec.Alpha,
		Stages:    len(j.spec.Stages),
		StageTask: j.stageTask,
	})
	if err != nil {
		return fmt.Errorf("%v: %w", err, ErrInvalid)
	}

	// The control channel and membership maps must exist before any
	// membership source can rebalance this job (the allocator may shrink
	// it the instant a later job joins).
	j.control = s.l.NewChan("service.control."+name, 16)
	j.workerSet = make(map[int]bool)
	j.engineSet = make(map[int]bool)
	j.memberWeights = make(map[int]float64)

	// Resolve the placement to a platform, worker set, and initial weights:
	// the job's fair share of the locally calibrated platform, or a
	// growable pool over the cluster's live nodes weighted by their
	// register-time benchmarks. Everything downstream is placement-agnostic.
	// The resolution is the job's calibrate phase: the timeline brackets it
	// and records one calibrate event per worker slot with its initial
	// dispatch weight.
	j.tr.Append(trace.Event{At: s.l.Now(), Kind: trace.KindPhaseStart, Msg: "calibrate"})
	var (
		pf      platform.Platform = s.pf
		pool    *cluster.Pool
		workers []int
		weights map[int]float64
	)
	if j.spec.placement() == PlacementCluster {
		pool, workers, weights, err = s.clusterPlatform()
		if err != nil {
			return err
		}
		pf = pool
		// The service default window is sized to the local worker slots; a
		// cluster usually has far more execution slots than that, so an
		// unspecified window grows to cover them — never shrinking below the
		// local default, which still bounds tiny clusters sensibly.
		if w := 2 * pool.TotalCapacity(); !explicitWindow && w > j.spec.Window {
			j.spec.Window = w
		}
		j.mu.Lock()
		for _, w := range workers {
			j.workerSet[w] = true
			j.engineSet[w] = true // the runner starts with exactly these
		}
		j.mu.Unlock()
	} else {
		if _, err := s.calibration(); err != nil {
			return fmt.Errorf("calibration: %w", err)
		}
		// Holding j.mu across Join makes the initial workerSet atomic with
		// the callback registration: a rebalance triggered by another
		// job's submit/finish the instant Join returns serialises after
		// this critical section instead of racing the snapshot below.
		// (Join cannot call this job's own callback — the joiner is
		// excluded from its own rebalance notifications — so there is no
		// self-deadlock, and no other holder of j.mu ever waits on the
		// allocator.)
		j.mu.Lock()
		workers = s.alloc.Join(name, j.spec.share(), j.onAllocDelta)
		for _, w := range workers {
			j.workerSet[w] = true
			j.engineSet[w] = true // the runner starts with exactly these
		}
		j.mu.Unlock()
		weights = s.ranking.Weights(workers)
	}
	j.pf, j.pool = pf, pool
	for _, w := range workers {
		node := ""
		if pool != nil {
			node = pool.NodeName(w)
		}
		j.tr.Append(trace.Event{
			At: s.l.Now(), Kind: trace.KindCalibrate,
			Node: node, Task: w, Value: weights[w],
		})
	}
	j.tr.Append(trace.Event{At: s.l.Now(), Kind: trace.KindPhaseEnd, Msg: "calibrate"})
	j.in = s.l.NewChan("service.in."+name, j.spec.Window)
	j.det = &monitor.Detector{
		// Z starts disabled; the warm-up installs it via the control
		// channel once the job's own task times are known. The rule's
		// observation window covers the job's worker set at submission —
		// for a cluster job that is the pool's slot count, not the daemon's
		// local workers: a breach should summarise one round over the
		// whole substrate, not two samples out of forty slots.
		Rule:       monitor.RuleMinOver,
		Window:     len(workers),
		MinSamples: len(workers),
	}
	if pool != nil {
		s.watchCluster(j, s.cfg.Cluster, pool)
	}

	s.reg.Gauge("service_jobs_active").Add(1)
	s.reg.Gauge("service_job_workers_" + metrics.LabelSafe(name)).Set(int64(len(workers)))

	// The stream phase opens here and closes in finish; the warmup phase
	// closes when onResult installs the job's threshold. The engine shares
	// the same trace log (and the same clock — c.Now() is s.l.Now()), so
	// dispatch/complete/threshold/recalibrate events interleave with these
	// phase spans on one coherent timeline.
	window := j.spec.Window
	opts := engine.StreamOptions{
		Workers:       workers,
		Window:        window,
		Weights:       weights,
		Detector:      j.det,
		Control:       j.control,
		OnResult:      j.onResult,
		OnRecalibrate: j.onRecalibrate,
		Log:           j.tr,
	}
	if j.spec.predictive() {
		opts.Predict = &engine.Predict{Margin: s.cfg.PredictMargin}
		opts.OnForecast = j.onForecast
		j.mu.Lock()
		j.effShare = j.spec.share()
		j.mu.Unlock()
		go s.forecastLoop(j)
	}
	j.tr.Append(trace.Event{At: s.l.Now(), Kind: trace.KindPhaseStart, Msg: "stream"})
	j.tr.Append(trace.Event{At: s.l.Now(), Kind: trace.KindPhaseStart, Msg: "warmup"})
	s.l.Go("service.job."+name, func(c rt.Ctx) {
		rep := run(pf, c, j.in, opts)
		j.finish(rep)
		s.reg.Gauge("service_jobs_active").Add(-1)
	})
	return nil
}

// recoverJob rebuilds one journaled job at Open time. Done jobs come back
// as finished husks — their retained results still serve the cursor API,
// so a poller that was mid-drain when the daemon died finishes cleanly.
// Unfinished jobs come back in JobRecovering: visible, accepting durable
// pushes, but with no runner yet; resume attaches one and re-delivers the
// un-acked tasks — immediately for local placement, or as soon as a
// worker node re-registers for cluster placement.
func (s *Service) recoverJob(rj recoveredJob) {
	j := &Job{
		name:        rj.name,
		svc:         s,
		spec:        rj.spec,
		state:       JobRecovering,
		done:        make(chan struct{}),
		tr:          trace.NewBounded(s.cfg.TraceCap),
		submitted:   rj.submitted,
		completed:   rj.resultsBase + len(rj.results),
		lost:        rj.lost,
		results:     rj.results,
		resultsBase: rj.resultsBase,
		walClosed:   rj.closed,
	}
	if rj.done {
		j.state = JobDone
		close(j.done)
	}
	s.mu.Lock()
	s.jobs[rj.name] = j
	s.mu.Unlock()
	if rj.done {
		return
	}
	s.reg.Counter("service_jobs_recovered_total").Inc()
	s.log.Info("job recovered from journal",
		"job", rj.name, "skeleton", rj.spec.skeleton(), "placement", rj.spec.placement(),
		"submitted", rj.submitted, "completed", j.completed)
	if rj.spec.placement() == PlacementCluster {
		go s.resumeWhenNodesLive(j)
		return
	}
	s.resume(j)
}

// resumeWhenNodesLive parks a recovered cluster job until the worker
// fleet re-registers (the workers survived the daemon; their next
// heartbeat gets ErrGone and they re-register through the normal path),
// then resumes it. Service shutdown abandons the wait — the job stays
// journaled for the next Open.
func (s *Service) resumeWhenNodesLive(j *Job) {
	for {
		if len(s.cfg.Cluster.Live()) > 0 {
			if err := s.resume(j); !errors.Is(err, ErrNoCluster) {
				return
			}
			// The node died again between the check and the platform
			// snapshot; keep waiting.
		}
		select {
		case <-s.closed:
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// resume attaches a runner to a recovered job and re-delivers its
// un-acked tasks. Holding sendMu across the state flip and the feed
// serialises against Push and CloseInput: a durable push journaled while
// the job was recovering is either in the pending snapshot fed here or
// arrives after the flip through the normal live path — never both,
// never neither.
func (s *Service) resume(j *Job) error {
	if err := s.startRunner(j, true); err != nil {
		return err
	}
	j.sendMu.Lock()
	defer j.sendMu.Unlock()
	pending, closed := s.wal.jobPending(j.name)
	j.mu.Lock()
	j.state = JobAccepting
	j.mu.Unlock()
	if len(pending) > 0 {
		// A feed error means the substrate died mid-redelivery; the
		// runner's finish accounts the remainder as lost, exactly as a
		// live push would.
		j.feed(pending)
		s.reg.Counter("service_tasks_redelivered_total").Add(int64(len(pending)))
	}
	s.log.Info("job resumed", "job", j.name, "redelivered", len(pending), "closed", closed)
	if closed {
		j.mu.Lock()
		j.state = JobDraining
		j.mu.Unlock()
		j.in.Close(nil)
	}
	return nil
}

// Job returns the named job.
func (s *Service) Job(name string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	return j, ok
}

// Statuses snapshots every job's status, sorted by name order of the map
// iteration (callers sort if they need determinism).
func (s *Service) Statuses() []JobStatus {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Remove deletes a finished job and its retained results — the retention
// lever for a daemon that otherwise accumulates every result it ever
// produced. Only done jobs can be removed; a running job's farm cannot be
// detached from the shared runtime.
func (s *Service) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return fmt.Errorf("service: no job %q", name)
	}
	if j.Status().State != JobDone {
		return fmt.Errorf("service: job %q is not done; close and drain it first", name)
	}
	if s.wal != nil {
		if err := s.wal.commit(walRecord{Kind: walRemove, Job: name}); err != nil {
			return fmt.Errorf("service: job %q: journal: %w", name, err)
		}
	}
	delete(s.jobs, name)
	s.reg.Delete("service_job_workers_" + metrics.LabelSafe(name))
	s.reg.Counter("service_jobs_removed_total").Inc()
	s.log.Info("job removed", "job", name)
	return nil
}

// Drain closes every accepting job's input and waits (up to timeout) for
// all jobs to finish. A zero timeout waits forever.
func (s *Service) Drain(timeout time.Duration) error {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.CloseInput() // idempotent; error only means already closed
	}
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for _, j := range jobs {
		select {
		case <-j.done:
		case <-deadline:
			return fmt.Errorf("service: drain timed out with job %q unfinished", j.name)
		}
	}
	return nil
}
