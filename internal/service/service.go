// Package service multiplexes many concurrent named streaming jobs onto one
// shared runtime and platform — the layer that turns the adaptive skeletons
// from batch programs into a long-running system serving continuous
// traffic.
//
// The service is skeleton-agnostic: a job declares its skeleton (farm,
// pipeline, dmap) and the adapt registry resolves it to an engine.Runner;
// from here on the service only ever touches the engine contract. Each job
// is one runner fed through a bounded channel, so submission backpressure
// propagates all the way to the caller. The service calibrates the
// platform once (Algorithm 1 over spin probes) and the one ranking's
// dispatch weights feed every skeleton type — chunk shares for farms,
// decomposition blocks for dmaps, stage mappings for pipelines. Per-job
// thresholds are derived from each job's own warm-up tasks and installed
// live through the engine's control channel, and detector breaches
// re-calibrate the job in place (reweighting or remapping, per skeleton)
// without draining the stream.
//
// The service runs only on the real runtime (rt.Local): it exists to serve
// actual traffic, while the simulator remains the domain of the experiment
// harness.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/cluster"
	"grasp/internal/metrics"
	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/skel/adapt"
	"grasp/internal/skel/engine"
)

// Config parameterises a Service.
type Config struct {
	// Workers is the number of platform worker slots (default GOMAXPROCS,
	// minimum 2 so adaptation has somewhere to shift work).
	Workers int
	// DefaultWindow is the per-job in-flight window when a job does not set
	// its own (default 2× Workers).
	DefaultWindow int
	// ThresholdFactor sets each job's Z = factor × warm-up mean task time
	// (default 4, the core layer's default).
	ThresholdFactor float64
	// WarmupTasks is how many completions a job observes before deriving
	// its threshold (default 2× Workers).
	WarmupTasks int
	// ProbeSpin is the busy-loop iteration count of a calibration probe
	// (default 50000).
	ProbeSpin int
	// MaxResults is the default per-job result-retention bound when a job
	// does not set its own (default 100000, capped at 1000000). This is the
	// knob that keeps a long-lived daemon's memory finite.
	MaxResults int
	// Cluster, when non-nil, lets jobs declare `placement: cluster`: their
	// tasks execute on remote graspworker processes registered with this
	// coordinator instead of the local platform.
	Cluster *cluster.Coordinator
}

func (c Config) withDefaults() Config {
	if c.Workers < 2 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 2 {
			c.Workers = 2
		}
	}
	if c.DefaultWindow <= 0 {
		c.DefaultWindow = 2 * c.Workers
	}
	if c.ThresholdFactor <= 0 {
		c.ThresholdFactor = 4
	}
	if c.WarmupTasks <= 0 {
		c.WarmupTasks = 2 * c.Workers
	}
	if c.ProbeSpin <= 0 {
		c.ProbeSpin = 50000
	}
	if c.MaxResults <= 0 {
		c.MaxResults = 100_000
	}
	if c.MaxResults > 1_000_000 {
		c.MaxResults = 1_000_000
	}
	return c
}

// Service owns the shared runtime, platform, calibration cache, and job
// table. Create one with New; it is safe for concurrent use.
type Service struct {
	cfg Config
	l   *rt.Local
	pf  platform.Platform
	reg *metrics.Registry

	mu   sync.Mutex
	jobs map[string]*Job

	calOnce sync.Once
	ranking calibrate.Ranking
	calErr  error
}

// New builds a service over a fresh local runtime and platform.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	l := rt.NewLocal()
	return &Service{
		cfg:  cfg,
		l:    l,
		pf:   platform.NewLocalPlatform(l, cfg.Workers),
		reg:  metrics.NewRegistry(),
		jobs: make(map[string]*Job),
	}
}

// Metrics exposes the service's operational counters.
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// Workers returns the platform worker count.
func (s *Service) Workers() int { return s.cfg.Workers }

// calibration runs Algorithm 1 once per service lifetime and caches the
// ranking; every job after the first reuses the cached result — the
// "per-platform calibration reuse" that amortises probing across jobs.
func (s *Service) calibration() (calibrate.Ranking, error) {
	first := false
	s.calOnce.Do(func() {
		first = true
		spin := s.cfg.ProbeSpin
		probe := platform.Task{ID: -1, Cost: float64(spin), Fn: func() any {
			cluster.Spin(int64(spin)) // the shared spin kernel: see cluster.Spin
			return spin
		}}
		done := make(chan struct{})
		s.l.Go("service.calibrate", func(c rt.Ctx) {
			defer close(done)
			out, err := calibrate.Run(s.pf, c, calibrate.Options{
				Strategy: calibrate.TimeOnly,
				Probes:   []platform.Task{probe},
			})
			if err != nil {
				s.calErr = err
				return
			}
			s.ranking = out.Ranking
		})
		<-done
		s.reg.Counter("service_calibrations_total").Inc()
	})
	if !first {
		s.reg.Counter("service_calibration_reuse_total").Inc()
	}
	return s.ranking, s.calErr
}

// Sentinel errors callers (the HTTP layer) map onto status codes.
var (
	// ErrJobExists reports a duplicate job name.
	ErrJobExists = errors.New("job already exists")
	// ErrInvalid reports a malformed submission.
	ErrInvalid = errors.New("invalid request")
	// ErrNoCluster reports a cluster placement the service cannot satisfy:
	// no coordinator configured, or no live worker nodes.
	ErrNoCluster = errors.New("cluster placement unavailable")
)

// Cluster returns the coordinator serving `placement: cluster` jobs (nil
// when the daemon runs without one).
func (s *Service) Cluster() *cluster.Coordinator { return s.cfg.Cluster }

// clusterPlatform snapshots the live worker nodes into a per-job platform
// plus dispatch weights. The weights come from Algorithm 1's ranking step
// applied to the register-time benchmark samples: each node's reported
// speed becomes a predicted probe time, so a node twice as fast starts
// with twice the dispatch share — per-node calibration without a probe
// round trip. Round-trip observations then reweight live via the engine.
func (s *Service) clusterPlatform() (*cluster.Pool, []int, map[int]float64, error) {
	coord := s.cfg.Cluster
	if coord == nil {
		return nil, nil, nil, fmt.Errorf("service: no cluster coordinator: %w", ErrNoCluster)
	}
	nodes := coord.Live()
	if len(nodes) == 0 {
		return nil, nil, nil, fmt.Errorf("service: no live worker nodes: %w", ErrNoCluster)
	}
	pool := cluster.NewPool(coord, s.l, nodes)
	members := pool.Members() // one worker index per node execution slot
	workers := make([]int, len(members))
	samples := make([]calibrate.Sample, len(members))
	const refOps = 1e6 // nominal probe size; only ratios matter for weights
	for i, m := range members {
		workers[i] = i
		speed := m.SpeedOPS
		if speed <= 0 {
			speed = 1
		}
		samples[i] = calibrate.Sample{
			Worker:    i,
			Time:      time.Duration(refOps / speed * float64(time.Second)),
			ProbeCost: refOps,
		}
	}
	ranking := calibrate.Rank(samples, calibrate.TimeOnly)
	s.reg.Counter("service_cluster_calibrations_total").Inc()
	return pool, workers, ranking.Weights(workers), nil
}

// Submit registers a new named job and starts its skeleton's engine
// runner. The name must be unused.
func (s *Service) Submit(name string, spec JobSpec) (*Job, error) {
	if name == "" {
		return nil, fmt.Errorf("service: job name must be non-empty: %w", ErrInvalid)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("service: job %q: %v: %w", name, err, ErrInvalid)
	}

	// Resolve the placement to a platform, worker set, and initial weights:
	// the local platform calibrated by spin probes, or a per-job snapshot of
	// the cluster's live nodes weighted by their register-time benchmarks.
	// Everything downstream is placement-agnostic.
	explicitWindow := spec.Window > 0
	spec = spec.withDefaults(s.cfg)
	var (
		pf      platform.Platform = s.pf
		pool    *cluster.Pool
		workers []int
		weights map[int]float64
	)
	if spec.placement() == PlacementCluster {
		var err error
		pool, workers, weights, err = s.clusterPlatform()
		if err != nil {
			return nil, fmt.Errorf("service: job %q: %w", name, err)
		}
		pf = pool
		// The service default window is sized to the local worker slots; a
		// cluster usually has far more execution slots than that, so an
		// unspecified window grows to cover them — never shrinking below the
		// local default, which still bounds tiny clusters sensibly.
		if w := 2 * pool.TotalCapacity(); !explicitWindow && w > spec.Window {
			spec.Window = w
		}
	} else {
		ranking, err := s.calibration()
		if err != nil {
			return nil, fmt.Errorf("service: calibration: %w", err)
		}
		workers = make([]int, s.cfg.Workers)
		for i := range workers {
			workers[i] = i
		}
		weights = ranking.Weights(workers)
	}
	j := &Job{
		name:    name,
		svc:     s,
		spec:    spec,
		pf:      pf,
		pool:    pool,
		in:      s.l.NewChan("service.in."+name, spec.Window),
		control: s.l.NewChan("service.control."+name, 4),
		det: &monitor.Detector{
			// Z starts disabled; the warm-up installs it via the control
			// channel once the job's own task times are known. The rule's
			// observation window covers the job's actual worker set — for a
			// cluster job that is the pool's slot count, not the daemon's
			// local workers: a breach should summarise one round over the
			// whole substrate, not two samples out of forty slots.
			Rule:       monitor.RuleMinOver,
			Window:     len(workers),
			MinSamples: len(workers),
		},
		state: JobAccepting,
		done:  make(chan struct{}),
	}

	// Resolve the declared skeleton to its engine runner. The Weighted
	// chunk policy is what makes the calibrated weights (and every live
	// re-weighting) actually shift a farm's dispatch shares; dmap and
	// pipeline consume the same weights through their own topologies.
	run, err := adapt.New(adapt.Spec{
		Skeleton:  spec.Skeleton,
		Chunk:     sched.Weighted{},
		WaveSize:  spec.WaveSize,
		Alpha:     spec.Alpha,
		Stages:    len(spec.Stages),
		StageTask: j.stageTask,
	})
	if err != nil {
		return nil, fmt.Errorf("service: job %q: %v: %w", name, err, ErrInvalid)
	}

	s.mu.Lock()
	if _, dup := s.jobs[name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: job %q: %w", name, ErrJobExists)
	}
	s.jobs[name] = j
	s.mu.Unlock()

	s.reg.Counter("service_jobs_total").Inc()
	s.reg.Counter("service_jobs_" + spec.skeleton() + "_total").Inc()
	s.reg.Counter("service_jobs_placement_" + spec.placement() + "_total").Inc()
	s.reg.Gauge("service_jobs_active").Add(1)

	s.l.Go("service.job."+name, func(c rt.Ctx) {
		rep := run(pf, c, j.in, engine.StreamOptions{
			Workers:       workers,
			Window:        spec.Window,
			Weights:       weights,
			Detector:      j.det,
			Control:       j.control,
			OnResult:      j.onResult,
			OnRecalibrate: j.onRecalibrate,
		})
		j.finish(rep)
		s.reg.Gauge("service_jobs_active").Add(-1)
	})
	return j, nil
}

// Job returns the named job.
func (s *Service) Job(name string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	return j, ok
}

// Statuses snapshots every job's status, sorted by name order of the map
// iteration (callers sort if they need determinism).
func (s *Service) Statuses() []JobStatus {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Remove deletes a finished job and its retained results — the retention
// lever for a daemon that otherwise accumulates every result it ever
// produced. Only done jobs can be removed; a running job's farm cannot be
// detached from the shared runtime.
func (s *Service) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return fmt.Errorf("service: no job %q", name)
	}
	if j.Status().State != JobDone {
		return fmt.Errorf("service: job %q is not done; close and drain it first", name)
	}
	delete(s.jobs, name)
	s.reg.Counter("service_jobs_removed_total").Inc()
	return nil
}

// Drain closes every accepting job's input and waits (up to timeout) for
// all jobs to finish. A zero timeout waits forever.
func (s *Service) Drain(timeout time.Duration) error {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.CloseInput() // idempotent; error only means already closed
	}
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for _, j := range jobs {
		select {
		case <-j.done:
		case <-deadline:
			return fmt.Errorf("service: drain timed out with job %q unfinished", j.name)
		}
	}
	return nil
}
