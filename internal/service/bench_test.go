package service

import (
	"sync"
	"sync/atomic"
	"testing"

	"grasp/internal/journal"
)

// countingStore wraps a journal.Store and counts fsyncs, so the
// benchmark can report fsyncs-per-record — the economics the group
// commit exists to change.
type countingStore struct {
	*journal.Store
	syncs atomic.Int64
}

func (c *countingStore) Sync() error {
	c.syncs.Add(1)
	return c.Store.Sync()
}

// BenchmarkDurableIngest drives 16 concurrent committers through the
// wal — the contended shape of the durable ingest path — under the
// group-commit discipline and under the serial fsync-per-record
// discipline (CommitMaxBatch = 1). CI's bench smoke runs this at
// -benchtime=1x for compile-and-run coverage; the enforced >=2x
// group/serial throughput gate lives in graspbench -compare, which
// measures the same contended shape end to end.
func BenchmarkDurableIngest(b *testing.B) {
	for _, mode := range []struct {
		name     string
		maxBatch int
	}{{"group", 0}, {"serial", 1}} {
		b.Run(mode.name+"-p16", func(b *testing.B) {
			dir := b.TempDir()
			store, _, err := journal.OpenStore(dir)
			if err != nil {
				b.Fatal(err)
			}
			cs := &countingStore{Store: store}
			w := newWAL(cs, walOptions{maxBatch: mode.maxBatch})
			defer w.close()
			if err := w.commit(walRecord{Kind: walCreate, Job: "bench", Spec: &JobSpec{}}); err != nil {
				b.Fatal(err)
			}
			const pushers = 16
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for p := 0; p < pushers; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						err := w.commit(walRecord{Kind: walTasks, Job: "bench",
							Tasks: []TaskSpec{{ID: int(i), Cost: 1}}})
						if err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(cs.syncs.Load())/float64(b.N), "fsyncs/record")
		})
	}
}
