package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"grasp/internal/cluster"
	"grasp/internal/journal"
	"grasp/internal/metrics"
)

// The service's write-ahead log. Every externally visible mutation —
// job creation, accepted tasks, acknowledged results, close, completion,
// removal, and the cluster registry's token state — is journaled and
// fsynced before the mutation's effects become observable:
//
//   - Submit journals the create record before the job is published;
//   - Push journals the accepted batch before a single task reaches the
//     engine (so "accepted" implies "survives a crash");
//   - onResult journals the ack before the result enters the poller-
//     visible results slice (so a cursor a client advanced past a result
//     can never see that task re-delivered after a restart).
//
// The wal keeps an in-memory mirror (walState) maintained by applying
// each record exactly as replay would, which makes replay determinism a
// testable property — replay(snapshot + journal) == live mirror — and
// gives compaction its snapshot for free.

// walRecord kinds.
const (
	walCreate  = "create"
	walTasks   = "tasks"
	walResults = "results"
	walClose   = "close"
	walDone    = "done"
	walRemove  = "remove"
	walCluster = "cluster"
)

// walRecord is one journaled mutation.
type walRecord struct {
	Kind    string                 `json:"kind"`
	Job     string                 `json:"job,omitempty"`
	Spec    *JobSpec               `json:"spec,omitempty"`
	Tasks   []TaskSpec             `json:"tasks,omitempty"`
	Results []TaskResult           `json:"results,omitempty"`
	Lost    int                    `json:"lost,omitempty"`
	Cluster *cluster.RegistryState `json:"cluster,omitempty"`
}

// walJob is one job's durable state: the defaulted spec, lifecycle flags,
// the accepted-but-unacknowledged tasks (Pending — exactly what recovery
// must re-deliver), and the acknowledged results under the same retention
// arithmetic the live job applies.
type walJob struct {
	Spec        JobSpec      `json:"spec"`
	Closed      bool         `json:"closed,omitempty"`
	Done        bool         `json:"done,omitempty"`
	Lost        int          `json:"lost,omitempty"`
	Submitted   int          `json:"submitted,omitempty"`
	Pending     []TaskSpec   `json:"pending,omitempty"`
	Results     []TaskResult `json:"results,omitempty"`
	ResultsBase int          `json:"results_base,omitempty"`
}

// walState is the full durable state — the snapshot payload.
type walState struct {
	Jobs    map[string]*walJob     `json:"jobs,omitempty"`
	Cluster *cluster.RegistryState `json:"cluster,omitempty"`
}

// apply folds one record into the state. It must be deterministic and
// total: replay calls it on every journaled record, and commit calls it
// on the live mirror before appending — the two must never diverge.
// Records referencing unknown jobs (a remove journaled, then replayed
// against a snapshot already past it) are ignored.
func (st *walState) apply(rec walRecord) {
	if st.Jobs == nil {
		st.Jobs = make(map[string]*walJob)
	}
	wj := st.Jobs[rec.Job]
	switch rec.Kind {
	case walCreate:
		if rec.Spec != nil {
			st.Jobs[rec.Job] = &walJob{Spec: *rec.Spec}
		}
	case walTasks:
		if wj != nil {
			wj.Submitted += len(rec.Tasks)
			wj.Pending = append(wj.Pending, rec.Tasks...)
		}
	case walResults:
		if wj != nil {
			for _, r := range rec.Results {
				wj.ack(r)
			}
		}
	case walClose:
		if wj != nil {
			wj.Closed = true
		}
	case walDone:
		if wj != nil {
			wj.Done = true
			wj.Lost = rec.Lost
			wj.Pending = nil
		}
	case walRemove:
		delete(st.Jobs, rec.Job)
	case walCluster:
		st.Cluster = rec.Cluster
	}
}

// ack settles one acknowledged result: the first pending occurrence of
// its task id is retired (redelivery after a crash re-pushes exactly the
// un-acked remainder) and the result joins the retained slice under the
// live job's retention trim, so replayed cursors match live ones.
func (wj *walJob) ack(r TaskResult) {
	for i, ts := range wj.Pending {
		if ts.ID == r.ID {
			// Full-slice-capacity copy: recovery snapshots Pending, and an
			// in-place shift here would mutate that snapshot underneath it.
			wj.Pending = append(wj.Pending[:i:i], wj.Pending[i+1:]...)
			break
		}
	}
	wj.Results = append(wj.Results, r)
	if slack := wj.Spec.MaxResults / 4; len(wj.Results) > wj.Spec.MaxResults+max(slack, 1) {
		drop := len(wj.Results) - wj.Spec.MaxResults
		wj.ResultsBase += drop
		wj.Results = append(wj.Results[:0:0], wj.Results[drop:]...)
	}
}

// wal owns the store and the live mirror. All methods are safe for
// concurrent use; a storage error latches (fail-stop durability): every
// later commit reports it and appends nothing, so the daemon can degrade
// loudly instead of silently diverging from its journal.
type wal struct {
	mu       sync.Mutex
	store    *journal.Store
	state    walState
	maxBytes int64
	err      error
	closed   bool
	// hFsync, when set (Open wires it to the service registry), observes
	// every commit's fsync time — the floor under durable-path latency.
	hFsync *metrics.Histogram
}

// defaultMaxJournalBytes triggers compaction once the journal outgrows it.
const defaultMaxJournalBytes = 8 << 20

// openWAL recovers (or initialises) the durable state under dir.
func openWAL(dir string, maxBytes int64) (*wal, error) {
	if maxBytes <= 0 {
		maxBytes = defaultMaxJournalBytes
	}
	store, rec, err := journal.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	w := &wal{store: store, maxBytes: maxBytes}
	if rec.Snapshot != nil {
		if err := json.Unmarshal(rec.Snapshot, &w.state); err != nil {
			store.Close()
			return nil, fmt.Errorf("service: wal snapshot: %w", err)
		}
	}
	for _, raw := range rec.Records {
		var r walRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			// A record that framed correctly but does not parse is corruption
			// past what the CRC caught; refuse to guess at the state.
			store.Close()
			return nil, fmt.Errorf("service: wal record: %w", err)
		}
		w.state.apply(r)
	}
	return w, nil
}

// commit applies rec to the mirror, journals it, and fsyncs — the record
// is durable when commit returns nil. Oversized journals compact inline.
func (w *wal) commit(rec walRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("service: wal is closed")
	}
	if w.err != nil {
		return w.err
	}
	w.state.apply(rec)
	raw, err := json.Marshal(rec)
	if err == nil {
		err = w.store.Append(raw)
	}
	if err == nil {
		syncStart := time.Now()
		err = w.store.Sync()
		if w.hFsync != nil {
			w.hFsync.ObserveDuration(time.Since(syncStart))
		}
	}
	if err != nil {
		w.err = err
		return err
	}
	if w.store.JournalSize() > w.maxBytes {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

// rotateLocked folds the mirror into a fresh snapshot.
func (w *wal) rotateLocked() error {
	snap, err := json.Marshal(w.state)
	if err != nil {
		return err
	}
	return w.store.Rotate(snap)
}

// close takes a final snapshot (compacting the journal away) and releases
// the store — the graceful-shutdown flush. Safe to call once.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var err error
	if w.err == nil {
		err = w.rotateLocked()
	}
	if cerr := w.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// jobPending snapshots one job's recovery view: the un-acked tasks to
// re-deliver and whether its input was durably closed. The copy is safe
// against concurrent acks (see walJob.ack).
func (w *wal) jobPending(name string) (pending []TaskSpec, closed bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	wj := w.state.Jobs[name]
	if wj == nil {
		return nil, false
	}
	return wj.Pending, wj.Closed
}

// clusterState returns the last journaled coordinator state (nil when
// none). The pointer is safe to share: cluster records replace it
// wholesale, never mutate it.
func (w *wal) clusterState() *cluster.RegistryState {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state.Cluster
}

// recoveredJobs lists the journaled jobs in name order (for deterministic
// recovery) along with deep-enough copies of their durable state.
func (w *wal) recoveredJobs() []recoveredJob {
	w.mu.Lock()
	defer w.mu.Unlock()
	names := make([]string, 0, len(w.state.Jobs))
	for name := range w.state.Jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]recoveredJob, 0, len(names))
	for _, name := range names {
		wj := w.state.Jobs[name]
		out = append(out, recoveredJob{
			name:        name,
			spec:        wj.Spec,
			closed:      wj.Closed,
			done:        wj.Done,
			lost:        wj.Lost,
			submitted:   wj.Submitted,
			results:     append([]TaskResult(nil), wj.Results...),
			resultsBase: wj.ResultsBase,
		})
	}
	return out
}

// recoveredJob is one job's replayed state handed to the recovery path.
type recoveredJob struct {
	name        string
	spec        JobSpec
	closed      bool
	done        bool
	lost        int
	submitted   int
	results     []TaskResult
	resultsBase int
}

// mirror returns a serialised copy of the live state (test hook for the
// replay-determinism property).
func (w *wal) mirror() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	raw, _ := json.Marshal(w.state)
	return raw
}
