package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"grasp/internal/cluster"
	"grasp/internal/journal"
	"grasp/internal/metrics"
)

// The service's write-ahead log. Every externally visible mutation —
// job creation, accepted tasks, acknowledged results, close, completion,
// removal, and the cluster registry's token state — is journaled and
// fsynced before the mutation's effects become observable:
//
//   - Submit journals the create record before the job is published;
//   - Push journals the accepted batch before a single task reaches the
//     engine (so "accepted" implies "survives a crash");
//   - onResult journals the ack before the result enters the poller-
//     visible results slice (so a cursor a client advanced past a result
//     can never see that task re-delivered after a restart).
//
// The wal keeps an in-memory mirror (walState) maintained by applying
// each record exactly as replay would, which makes replay determinism a
// testable property — replay(snapshot + journal) == live mirror — and
// gives compaction its snapshot for free.
//
// The commit path is a group commit: concurrent committers coalesce into
// batches journaled through one write syscall and made durable by one
// fsync, so durable ingest throughput scales with concurrency instead of
// being capped at the disk's serial fsync rate. The contract is
// unchanged — commit returns nil only after the fsync covering its record
// completes.

// walRecord kinds.
const (
	walCreate  = "create"
	walTasks   = "tasks"
	walResults = "results"
	walClose   = "close"
	walDone    = "done"
	walRemove  = "remove"
	walCluster = "cluster"
)

// walRecord is one journaled mutation.
type walRecord struct {
	Kind    string                 `json:"kind"`
	Job     string                 `json:"job,omitempty"`
	Spec    *JobSpec               `json:"spec,omitempty"`
	Tasks   []TaskSpec             `json:"tasks,omitempty"`
	Results []TaskResult           `json:"results,omitempty"`
	Lost    int                    `json:"lost,omitempty"`
	Cluster *cluster.RegistryState `json:"cluster,omitempty"`
}

// walJob is one job's durable state: the defaulted spec, lifecycle flags,
// the accepted-but-unacknowledged tasks (Pending — exactly what recovery
// must re-deliver), and the acknowledged results under the same retention
// arithmetic the live job applies.
type walJob struct {
	Spec        JobSpec      `json:"spec"`
	Closed      bool         `json:"closed,omitempty"`
	Done        bool         `json:"done,omitempty"`
	Lost        int          `json:"lost,omitempty"`
	Submitted   int          `json:"submitted,omitempty"`
	Pending     []TaskSpec   `json:"pending,omitempty"`
	Results     []TaskResult `json:"results,omitempty"`
	ResultsBase int          `json:"results_base,omitempty"`
}

// walState is the full durable state — the snapshot payload.
type walState struct {
	Jobs    map[string]*walJob     `json:"jobs,omitempty"`
	Cluster *cluster.RegistryState `json:"cluster,omitempty"`
}

// apply folds one record into the state. It must be deterministic and
// total: replay calls it on every journaled record, and commit calls it
// on the live mirror before appending — the two must never diverge.
// Records referencing unknown jobs (a remove journaled, then replayed
// against a snapshot already past it) are ignored.
func (st *walState) apply(rec walRecord) {
	if st.Jobs == nil {
		st.Jobs = make(map[string]*walJob)
	}
	wj := st.Jobs[rec.Job]
	switch rec.Kind {
	case walCreate:
		if rec.Spec != nil {
			st.Jobs[rec.Job] = &walJob{Spec: *rec.Spec}
		}
	case walTasks:
		if wj != nil {
			wj.Submitted += len(rec.Tasks)
			wj.Pending = append(wj.Pending, rec.Tasks...)
		}
	case walResults:
		if wj != nil {
			for _, r := range rec.Results {
				wj.ack(r)
			}
		}
	case walClose:
		if wj != nil {
			wj.Closed = true
		}
	case walDone:
		if wj != nil {
			wj.Done = true
			wj.Lost = rec.Lost
			wj.Pending = nil
		}
	case walRemove:
		delete(st.Jobs, rec.Job)
	case walCluster:
		st.Cluster = rec.Cluster
	}
}

// ack settles one acknowledged result: the first pending occurrence of
// its task id is retired (redelivery after a crash re-pushes exactly the
// un-acked remainder) and the result joins the retained slice under the
// live job's retention trim, so replayed cursors match live ones.
func (wj *walJob) ack(r TaskResult) {
	for i, ts := range wj.Pending {
		if ts.ID == r.ID {
			// Full-slice-capacity copy: recovery snapshots Pending, and an
			// in-place shift here would mutate that snapshot underneath it.
			wj.Pending = append(wj.Pending[:i:i], wj.Pending[i+1:]...)
			break
		}
	}
	wj.Results = append(wj.Results, r)
	if slack := wj.Spec.MaxResults / 4; len(wj.Results) > wj.Spec.MaxResults+max(slack, 1) {
		drop := len(wj.Results) - wj.Spec.MaxResults
		wj.ResultsBase += drop
		wj.Results = append(wj.Results[:0:0], wj.Results[drop:]...)
	}
}

// walStore is the slice of journal.Store the wal drives, as an interface
// so fault-injection tests can interpose failing stores between the
// group-commit machinery and the disk. *journal.Store is the production
// implementation.
type walStore interface {
	AppendBatch(payloads [][]byte) error
	Sync() error
	JournalSize() int64
	Rotate(state []byte) error
	Close() error
}

// walCommit is one record enqueued for the flush leader: the decoded
// record (applied to the mirror in queue order), its marshalled bytes,
// and the channel the leader delivers the batch's shared result on.
type walCommit struct {
	rec  walRecord
	raw  []byte
	done chan error
}

// wal owns the store and the live mirror. All methods are safe for
// concurrent use; a storage error latches (fail-stop durability): every
// later commit reports it and appends nothing, so the daemon can degrade
// loudly instead of silently diverging from its journal.
//
// Commits are group-committed: concurrent committers enqueue, the first
// to find no leader becomes one and drains the queue in bounded batches —
// one write syscall and one fsync per batch — then wakes every member
// with the shared result. A single uncontended commit degenerates to the
// old serial path (a batch of one); under 16 concurrent pushers the disk
// sees one fsync for the whole convoy.
type wal struct {
	mu    sync.Mutex
	idle  *sync.Cond // signalled when a flush round retires (flushing → false)
	store walStore
	state walState

	// queue and flushing are the group-commit core. Committers append to
	// queue under mu; flushing marks a live leader, which also guarantees
	// exclusive store access while the lock is released around I/O.
	queue    []*walCommit
	flushing bool

	maxBytes      int64
	linger        time.Duration
	maxBatch      int
	maxBatchBytes int64

	err    error
	closed bool

	// hFsync, when set (Open wires it to the service registry), observes
	// every batch's fsync time — the floor under durable-path latency.
	// hBatch observes how many records each flush coalesced.
	hFsync *metrics.Histogram
	hBatch *metrics.Histogram
	log    *slog.Logger
}

const (
	// defaultMaxJournalBytes triggers compaction once the journal outgrows it.
	defaultMaxJournalBytes = 8 << 20
	// defaultCommitMaxBatch bounds one flush by record count; with 9-byte
	// frames and small records this keeps wakeup convoys and batch latency
	// bounded while still amortising the fsync ~two orders of magnitude.
	defaultCommitMaxBatch = 256
	// defaultCommitMaxBatchBytes bounds one flush by marshalled payload, so
	// a convoy of maximal task batches cannot buffer unbounded memory.
	defaultCommitMaxBatchBytes = 4 << 20
)

// walOptions tunes the group-commit flush loop. The zero value means
// defaults everywhere.
type walOptions struct {
	// maxBytes triggers snapshot compaction once the journal outgrows it.
	maxBytes int64
	// linger is how long the leader waits — lock released, committers free
	// to join — before carving each batch; zero flushes immediately.
	linger time.Duration
	// maxBatch caps records per flush. 1 reproduces the serial
	// one-fsync-per-record discipline (the benchmark baseline mode).
	maxBatch int
	// maxBatchBytes caps marshalled bytes per flush.
	maxBatchBytes int64
}

func (o walOptions) withDefaults() walOptions {
	if o.maxBytes <= 0 {
		o.maxBytes = defaultMaxJournalBytes
	}
	if o.linger < 0 {
		o.linger = 0
	}
	if o.maxBatch <= 0 {
		o.maxBatch = defaultCommitMaxBatch
	}
	if o.maxBatchBytes <= 0 {
		o.maxBatchBytes = defaultCommitMaxBatchBytes
	}
	return o
}

// newWAL wires the group-commit machinery over an open store (shared by
// openWAL and the fault-injection tests).
func newWAL(store walStore, opt walOptions) *wal {
	opt = opt.withDefaults()
	w := &wal{
		store:         store,
		maxBytes:      opt.maxBytes,
		linger:        opt.linger,
		maxBatch:      opt.maxBatch,
		maxBatchBytes: opt.maxBatchBytes,
	}
	w.idle = sync.NewCond(&w.mu)
	return w
}

// openWAL recovers (or initialises) the durable state under dir.
func openWAL(dir string, opt walOptions) (*wal, error) {
	store, rec, err := journal.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	w := newWAL(store, opt)
	if rec.Snapshot != nil {
		if err := json.Unmarshal(rec.Snapshot, &w.state); err != nil {
			store.Close()
			return nil, fmt.Errorf("service: wal snapshot: %w", err)
		}
	}
	for _, raw := range rec.Records {
		var r walRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			// A record that framed correctly but does not parse is corruption
			// past what the CRC caught; refuse to guess at the state.
			store.Close()
			return nil, fmt.Errorf("service: wal record: %w", err)
		}
		w.state.apply(r)
	}
	return w, nil
}

// commit makes rec durable — the record is applied to the mirror,
// journaled, and fsynced before commit returns nil, exactly the contract
// of the serial path. Concurrent commits coalesce: this caller either
// joins the current leader's queue and sleeps until its batch's single
// fsync completes, or becomes the leader itself. Oversized journals
// compact inline (by the leader).
func (w *wal) commit(rec walRecord) error {
	// Marshal outside the mutex: a slow marshal of a large task batch must
	// never extend the critical section or stall another committer's batch.
	raw, merr := json.Marshal(rec)

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("service: wal is closed")
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if merr != nil {
		// A record that cannot marshal can never reach the journal: latch,
		// exactly as a storage error would.
		w.err = merr
		w.mu.Unlock()
		return merr
	}
	c := &walCommit{rec: rec, raw: raw, done: make(chan error, 1)}
	w.queue = append(w.queue, c)
	if !w.flushing {
		// No leader in flight: this committer leads until the queue drains
		// (its own batch is delivered by the time flushLoop returns).
		w.flushLoop()
	}
	w.mu.Unlock()
	return <-c.done
}

// flushLoop drains the queue as the flush leader: carve a bounded batch,
// apply it to the mirror in order, journal it through one write syscall
// and one fsync, deliver the shared result to every member, repeat.
// Called with w.mu held and returns with it held; the lock is released
// around the linger window and the store I/O, with the flushing flag
// keeping store access exclusive in between.
func (w *wal) flushLoop() {
	w.flushing = true
	for len(w.queue) > 0 {
		if w.err != nil {
			// Fail-stop: the error latched mid-drain, so everyone still
			// queued gets it without touching the store.
			for _, c := range w.queue {
				c.done <- w.err
			}
			w.queue = nil
			break
		}
		if w.linger > 0 {
			// Let the batch fill under light load; committers enqueue behind
			// the leader while it sleeps with the lock released.
			w.mu.Unlock()
			time.Sleep(w.linger)
			w.mu.Lock()
		}
		batch := w.takeBatch()
		// Mirror application stays ordered with the journal: records are
		// applied under the lock, in queue order, before their bytes are
		// written — the exact order replay will see.
		for _, c := range batch {
			w.state.apply(c.rec)
		}
		w.mu.Unlock()
		err := w.flushBatch(batch)
		w.mu.Lock()
		if err == nil && w.store.JournalSize() > w.maxBytes {
			err = w.rotateAsLeader()
		}
		if err != nil {
			w.err = err
			if w.log != nil {
				w.log.Error("wal commit failed; latching fail-stop",
					"err", err, "records", len(batch), "batched", len(batch) > 1)
			}
		}
		for _, c := range batch {
			c.done <- err
		}
	}
	w.flushing = false
	w.idle.Broadcast()
}

// takeBatch carves the next flush batch off the queue, bounded by record
// count and marshalled bytes (always at least one record so a single
// oversized commit still progresses).
func (w *wal) takeBatch() []*walCommit {
	n, size := 0, int64(0)
	for n < len(w.queue) && n < w.maxBatch {
		size += int64(len(w.queue[n].raw))
		if n > 0 && size > w.maxBatchBytes {
			break
		}
		n++
	}
	batch := w.queue[:n:n]
	w.queue = w.queue[n:]
	return batch
}

// flushBatch journals one group: a single buffered write syscall, then a
// single fsync covering every record in the batch. Called by the leader
// with w.mu released; the flushing flag guarantees exclusive store
// access.
func (w *wal) flushBatch(batch []*walCommit) error {
	raws := make([][]byte, len(batch))
	for i, c := range batch {
		raws[i] = c.raw
	}
	err := w.store.AppendBatch(raws)
	if err == nil {
		syncStart := time.Now()
		err = w.store.Sync()
		if w.hFsync != nil {
			w.hFsync.ObserveDuration(time.Since(syncStart))
		}
	}
	if w.hBatch != nil {
		w.hBatch.Observe(float64(len(batch)))
	}
	if err == nil && w.log != nil && w.log.Enabled(context.Background(), slog.LevelDebug) {
		w.log.Debug("wal flush", "records", len(batch), "batched", len(batch) > 1)
	}
	return err
}

// rotateAsLeader folds the mirror into a fresh snapshot. Called with
// w.mu held by the flush leader; the snapshot marshal and the store I/O
// run with the lock released — safe because only the leader mutates the
// mirror while flushing is set (concurrent readers take the lock and only
// read), and close waits for the flush round to retire.
func (w *wal) rotateAsLeader() error {
	w.mu.Unlock()
	snap, err := json.Marshal(w.state)
	if err == nil {
		err = w.store.Rotate(snap)
	}
	w.mu.Lock()
	return err
}

// close waits for any in-flight flush round to retire, takes a final
// snapshot (compacting the journal away), and releases the store — the
// graceful-shutdown flush. Safe to call more than once.
func (w *wal) close() error {
	w.mu.Lock()
	for w.flushing {
		w.idle.Wait()
	}
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	var err error
	if w.err == nil {
		// closed is set and no flush is in flight, so the mirror is frozen:
		// the final snapshot marshal runs outside the lock too.
		w.mu.Unlock()
		snap, merr := json.Marshal(w.state)
		if merr == nil {
			err = w.store.Rotate(snap)
		} else {
			err = merr
		}
		w.mu.Lock()
	}
	if cerr := w.store.Close(); err == nil {
		err = cerr
	}
	w.mu.Unlock()
	return err
}

// jobPending snapshots one job's recovery view: the un-acked tasks to
// re-deliver and whether its input was durably closed. The copy is safe
// against concurrent acks (see walJob.ack).
func (w *wal) jobPending(name string) (pending []TaskSpec, closed bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	wj := w.state.Jobs[name]
	if wj == nil {
		return nil, false
	}
	return wj.Pending, wj.Closed
}

// clusterState returns the last journaled coordinator state (nil when
// none). The pointer is safe to share: cluster records replace it
// wholesale, never mutate it.
func (w *wal) clusterState() *cluster.RegistryState {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state.Cluster
}

// recoveredJobs lists the journaled jobs in name order (for deterministic
// recovery) along with deep-enough copies of their durable state.
func (w *wal) recoveredJobs() []recoveredJob {
	w.mu.Lock()
	defer w.mu.Unlock()
	names := make([]string, 0, len(w.state.Jobs))
	for name := range w.state.Jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]recoveredJob, 0, len(names))
	for _, name := range names {
		wj := w.state.Jobs[name]
		out = append(out, recoveredJob{
			name:        name,
			spec:        wj.Spec,
			closed:      wj.Closed,
			done:        wj.Done,
			lost:        wj.Lost,
			submitted:   wj.Submitted,
			results:     append([]TaskResult(nil), wj.Results...),
			resultsBase: wj.ResultsBase,
		})
	}
	return out
}

// recoveredJob is one job's replayed state handed to the recovery path.
type recoveredJob struct {
	name        string
	spec        JobSpec
	closed      bool
	done        bool
	lost        int
	submitted   int
	results     []TaskResult
	resultsBase int
}

// mirror returns a serialised copy of the live state (test hook for the
// replay-determinism property).
func (w *wal) mirror() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	raw, _ := json.Marshal(w.state)
	return raw
}
