package service

// The per-job timeline endpoint: the live read side of the bounded trace
// every job carries. One GET returns the job's recent events (cursor-
// paged exactly like the results endpoint), its phase spans, and a
// throughput series — the engine's dispatch/complete/threshold/
// recalibrate events and the service's calibrate/warmup/stream brackets,
// all on the local runtime's clock. ?format=csv streams the raw retained
// events for offline analysis with the same columns the experiment
// harness writes.

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"grasp/internal/trace"
)

// timelineEvent is one trace event in wire form, tagged with its absolute
// sequence number so pollers can resume from `next`.
type timelineEvent struct {
	Seq int64 `json:"seq"`
	trace.Event
}

// timelinePhase is one phase span in wire form (EndNS -1 = still open).
type timelinePhase struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
}

// timelineBucket is one throughput interval in wire form.
type timelineBucket struct {
	StartNS     int64 `json:"start_ns"`
	Completions int   `json:"completions"`
}

// timelineResponse is the GET .../timeline wire form.
type timelineResponse struct {
	Job        string           `json:"job,omitempty"`
	State      string           `json:"state,omitempty"`
	Events     []timelineEvent  `json:"events"`
	Next       int64            `json:"next"`
	Dropped    int64            `json:"dropped"`
	Total      int64            `json:"total"`
	Phases     []timelinePhase  `json:"phases,omitempty"`
	Throughput []timelineBucket `json:"throughput,omitempty"`
}

// defaultBucketMS is the throughput bucket width when ?bucket_ms is unset.
const defaultBucketMS = 100

// buildTimeline reduces a trace log into the wire response: the events at
// sequence numbers ≥ after (clamped by the ring's retention), the phase
// spans, and completion throughput over the log's whole retained horizon.
func buildTimeline(log *trace.Log, after int64, bucket time.Duration) timelineResponse {
	events, next := log.Since(after)
	resp := timelineResponse{
		Events:  make([]timelineEvent, len(events)),
		Next:    next,
		Dropped: log.Dropped(),
		Total:   log.Total(),
	}
	for i, e := range events {
		resp.Events[i] = timelineEvent{Seq: next - int64(len(events)-i), Event: e}
	}
	for _, ph := range log.Phases() {
		end := int64(-1)
		if ph.End >= 0 {
			end = int64(ph.End)
		}
		resp.Phases = append(resp.Phases, timelinePhase{
			Name: ph.Name, StartNS: int64(ph.Start), EndNS: end,
		})
	}
	if last, ok := log.Last(); ok {
		for _, b := range log.Throughput(bucket, last.At) {
			resp.Throughput = append(resp.Throughput, timelineBucket{
				StartNS: int64(b.Start), Completions: b.Completions,
			})
		}
	}
	return resp
}

// timelineParams parses the shared ?after / ?bucket_ms query parameters.
func timelineParams(r *http.Request) (after int64, bucket time.Duration, err error) {
	bucket = defaultBucketMS * time.Millisecond
	if q := r.URL.Query().Get("after"); q != "" {
		v, perr := strconv.ParseInt(q, 10, 64)
		if perr != nil || v < 0 {
			return 0, 0, fmt.Errorf("after must be a non-negative integer")
		}
		after = v
	}
	if q := r.URL.Query().Get("bucket_ms"); q != "" {
		v, perr := strconv.Atoi(q)
		if perr != nil || v <= 0 {
			return 0, 0, fmt.Errorf("bucket_ms must be a positive integer")
		}
		bucket = time.Duration(v) * time.Millisecond
	}
	return after, bucket, nil
}

// serveTimeline writes one trace log as JSON or CSV (?format=csv).
func serveTimeline(w http.ResponseWriter, r *http.Request, log *trace.Log, job, state string) {
	switch r.URL.Query().Get("format") {
	case "", "json":
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		log.WriteCSV(w)
		return
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (json, csv)", r.URL.Query().Get("format")))
		return
	}
	after, bucket, err := timelineParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := buildTimeline(log, after, bucket)
	resp.Job, resp.State = job, state
	writeJSON(w, http.StatusOK, resp)
}
