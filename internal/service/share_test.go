package service_test

import (
	"testing"
	"time"

	"grasp/internal/service"
)

// share builds a JobSpec share pointer.
func share(v float64) *float64 { return &v }

// pushSleep pushes n sequential sleep tasks starting at base.
func pushSleep(t *testing.T, j *service.Job, base, n int, sleepUS int64) {
	t.Helper()
	specs := make([]service.TaskSpec, n)
	for i := range specs {
		specs[i] = service.TaskSpec{ID: base + i, Cost: 1, SleepUS: sleepUS}
	}
	if _, err := j.Push(specs); err != nil {
		t.Fatal(err)
	}
}

// waitDone blocks for the job to drain.
func waitDone(t *testing.T, j *service.Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never drained", j.Name())
	}
}

// TestFairShareRebalancesLiveJobs drives the tentpole end to end on the
// local platform: a lone job owns every worker; a heavier competitor
// arriving mid-stream shrinks it to its fair share (tasks pushed after
// the rebalance run only on the shrunken membership); and the
// competitor's finish hands its workers back.
func TestFairShareRebalancesLiveJobs(t *testing.T) {
	const workers = 8
	s := service.New(service.Config{Workers: workers, WarmupTasks: 2})

	light, err := s.Submit("light", service.JobSpec{Share: share(1)})
	if err != nil {
		t.Fatal(err)
	}
	if st := light.Status(); st.Workers != workers {
		t.Fatalf("lone job holds %d workers, want all %d (work conservation)", st.Workers, workers)
	}
	pushSleep(t, light, 0, 20, 500)

	heavy, err := s.Submit("heavy", service.JobSpec{Share: share(3)})
	if err != nil {
		t.Fatal(err)
	}
	lightSt, heavySt := light.Status(), heavy.Status()
	if lightSt.Workers != 2 || heavySt.Workers != 6 {
		t.Fatalf("split = %d:%d, want 2:6 for shares 1:3", lightSt.Workers, heavySt.Workers)
	}
	if lightSt.Share != 1 || heavySt.Share != 3 {
		t.Fatalf("status shares = %g:%g, want 1:3", lightSt.Share, heavySt.Share)
	}
	lightSet := map[int]bool{}
	for _, w := range lightSt.AllocatedWorkers {
		lightSet[w] = true
	}

	// Tasks pushed after the rebalance dispatch only onto light's shrunken
	// membership: the removal delta was flushed synchronously at heavy's
	// submit, and the coordinator drains control before every dispatch.
	// Verify while heavy is still live — once it finishes, its workers
	// legitimately rejoin light.
	const postBase = 100
	pushSleep(t, light, postBase, 30, 500)
	pushSleep(t, heavy, 0, 40, 500)
	deadline := time.Now().Add(30 * time.Second)
	for light.Status().Completed < 50 {
		if time.Now().After(deadline) {
			t.Fatalf("light stalled at %d completions", light.Status().Completed)
		}
		time.Sleep(2 * time.Millisecond)
	}
	midResults, _ := light.Results(0)
	for _, r := range midResults {
		if r.ID >= postBase && !lightSet[r.Worker] {
			t.Errorf("post-rebalance task %d ran on worker %d, outside light's allocation %v",
				r.ID, r.Worker, lightSt.AllocatedWorkers)
		}
	}
	if err := heavy.CloseInput(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, heavy)

	// Heavy's finish returns its six workers to the lone survivor.
	if st := light.Status(); st.Workers != workers {
		t.Fatalf("light holds %d workers after heavy finished, want all %d back", st.Workers, workers)
	}
	pushSleep(t, light, 200, 10, 500)
	if err := light.CloseInput(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, light)

	results, _ := light.Results(0)
	seen := map[int]bool{}
	for _, r := range results {
		if seen[r.ID] {
			t.Fatalf("task %d duplicated", r.ID)
		}
		seen[r.ID] = true
	}
	if len(results) != 60 {
		t.Fatalf("light completed %d results, want 60", len(results))
	}
	hr, _ := heavy.Results(0)
	if len(hr) != 40 {
		t.Fatalf("heavy completed %d results, want 40", len(hr))
	}

	// The engine actually applied the membership churn: light shrank by 6
	// and grew by 6.
	rep := light.Report()
	if rep.WorkersRemoved < 6 || rep.WorkersAdded < 6 {
		t.Errorf("light's membership churn = +%d/-%d, want at least +6/-6",
			rep.WorkersAdded, rep.WorkersRemoved)
	}
}

// TestShareValidation checks the spec-level contract: explicit
// non-positive shares are rejected, omitted shares default.
func TestShareValidation(t *testing.T) {
	s := service.New(service.Config{Workers: 2, DefaultShare: 2.5})
	if _, err := s.Submit("bad", service.JobSpec{Share: share(0)}); err == nil {
		t.Error("share 0 accepted, want rejection")
	}
	if _, err := s.Submit("bad2", service.JobSpec{Share: share(-1)}); err == nil {
		t.Error("negative share accepted, want rejection")
	}
	j, err := s.Submit("defaulted", service.JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Status().Share; got != 2.5 {
		t.Errorf("defaulted share = %g, want the config default 2.5", got)
	}
	j.CloseInput()
	waitDone(t, j)
}
