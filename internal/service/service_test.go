package service

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// burst builds n task specs with IDs base..base+n-1 sleeping sleepUS each.
func burst(base, n int, sleepUS int64) []TaskSpec {
	specs := make([]TaskSpec, n)
	for i := range specs {
		specs[i] = TaskSpec{ID: base + i, Cost: 1, SleepUS: sleepUS}
	}
	return specs
}

// waitDone fails the test if the job does not finish within the deadline.
func waitDone(t *testing.T, j *Job, d time.Duration) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(d):
		t.Fatalf("job %s did not finish within %v (status %+v)", j.Name(), d, j.Status())
	}
}

func TestServiceThreeConcurrentStreamingJobs(t *testing.T) {
	// The acceptance scenario: ≥3 concurrent streaming jobs on one service,
	// backpressure engaged (bounded in-flight window observed), and a
	// detector-triggered recalibration mid-stream — with no task lost or
	// duplicated anywhere.
	const (
		jobs   = 3
		perJob = 60
		window = 5
		fastUS = 100
		// Slow tasks must dwarf Z = factor × warm-up mean even when the
		// warm-up times are inflated by race-detector and scheduler
		// overhead, or the breach assertion flakes.
		slowUS  = 30000
		batches = 6
	)
	s := New(Config{Workers: 4, DefaultWindow: window, WarmupTasks: 4, ThresholdFactor: 3})

	var wg sync.WaitGroup
	handles := make([]*Job, jobs)
	for k := 0; k < jobs; k++ {
		j, err := s.Submit(fmt.Sprintf("job-%d", k), JobSpec{})
		if err != nil {
			t.Fatal(err)
		}
		handles[k] = j
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := k * 1000
			per := perJob / batches
			for b := 0; b < batches; b++ {
				sleep := int64(fastUS)
				if b >= batches/2 {
					// The stream slows down sharply mid-flight: the warmed-up
					// detector must breach and recalibrate without draining.
					sleep = slowUS
				}
				if _, err := j.Push(burst(base+b*per, per, sleep)); err != nil {
					t.Errorf("job %d push: %v", k, err)
					return
				}
			}
			if err := j.CloseInput(); err != nil {
				t.Errorf("job %d close: %v", k, err)
			}
		}()
	}
	wg.Wait()
	for _, j := range handles {
		waitDone(t, j, 30*time.Second)
	}

	for k, j := range handles {
		st := j.Status()
		if st.State != JobDone {
			t.Errorf("job %d state = %s", k, st.State)
		}
		if st.Completed != perJob || st.Submitted != perJob {
			t.Errorf("job %d completed %d / submitted %d, want %d", k, st.Completed, st.Submitted, perJob)
		}
		if st.MaxInFlight > window {
			t.Errorf("job %d MaxInFlight = %d exceeds window %d: backpressure not engaged", k, st.MaxInFlight, window)
		}
		if st.MaxInFlight == 0 {
			t.Errorf("job %d never observed in-flight tasks", k)
		}
		if st.Breaches == 0 || st.Recalibrations == 0 {
			t.Errorf("job %d: breaches=%d recalibrations=%d, want both > 0 (mid-stream adaptation)", k, st.Breaches, st.Recalibrations)
		}
		// Exactly-once per job, and strictly this job's ID range: isolation.
		results, _ := j.Results(0)
		seen := make(map[int]bool, perJob)
		for _, r := range results {
			if r.ID < k*1000 || r.ID >= k*1000+perJob {
				t.Errorf("job %d received foreign task %d", k, r.ID)
			}
			if seen[r.ID] {
				t.Errorf("job %d task %d duplicated", k, r.ID)
			}
			seen[r.ID] = true
		}
		if len(seen) != perJob {
			t.Errorf("job %d lost tasks: %d distinct of %d", k, len(seen), perJob)
		}
	}

	snap := s.Metrics().Snapshot()
	if snap["service_jobs_total"] != jobs {
		t.Errorf("jobs_total = %d", snap["service_jobs_total"])
	}
	if snap["service_tasks_completed_total"] != jobs*perJob {
		t.Errorf("tasks_completed_total = %d, want %d", snap["service_tasks_completed_total"], jobs*perJob)
	}
	if snap["service_calibrations_total"] != 1 {
		t.Errorf("calibrations_total = %d, want 1 (probe once)", snap["service_calibrations_total"])
	}
	if snap["service_calibration_reuse_total"] != jobs-1 {
		t.Errorf("calibration_reuse_total = %d, want %d (later jobs reuse)", snap["service_calibration_reuse_total"], jobs-1)
	}
	if snap["service_jobs_active"] != 0 || snap["service_jobs_active_max"] != jobs {
		t.Errorf("jobs_active gauge = %d (max %d), want 0 (max %d)",
			snap["service_jobs_active"], snap["service_jobs_active_max"], jobs)
	}
}

func TestServicePushBlocksUnderBackpressure(t *testing.T) {
	// Window 2 and a 2-deep input buffer: pushing 20 tasks of ~1ms each on
	// 2 workers cannot return before most of the work has been admitted,
	// so Push must take at least a few task durations.
	s := New(Config{Workers: 2, DefaultWindow: 2, WarmupTasks: 1000})
	j, err := s.Submit("bp", JobSpec{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := j.Push(burst(0, 20, 1000)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if err := j.CloseInput(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 10*time.Second)
	// 20 tasks × 1ms over 2 workers ≈ 10ms of work; with a window of 2 and
	// a buffer of 2, Push can run ahead by at most ~4 tasks.
	if elapsed < 3*time.Millisecond {
		t.Errorf("Push returned in %v: backpressure did not reach the submitter", elapsed)
	}
	if st := j.Status(); st.MaxInFlight > 2 {
		t.Errorf("MaxInFlight = %d exceeds window 2", st.MaxInFlight)
	}
}

func TestServiceDuplicateJobName(t *testing.T) {
	s := New(Config{Workers: 2})
	if _, err := s.Submit("same", JobSpec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("same", JobSpec{}); err == nil {
		t.Error("duplicate job name accepted")
	}
	if _, err := s.Submit("", JobSpec{}); err == nil {
		t.Error("empty job name accepted")
	}
}

func TestServicePushAfterCloseFails(t *testing.T) {
	s := New(Config{Workers: 2})
	j, err := s.Submit("closed", JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CloseInput(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Push(burst(0, 1, 0)); err == nil {
		t.Error("push after close accepted")
	}
	if err := j.CloseInput(); err == nil {
		t.Error("double close accepted")
	}
	waitDone(t, j, 5*time.Second)
}

func TestServiceDrainClosesEverything(t *testing.T) {
	s := New(Config{Workers: 2})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(fmt.Sprintf("d%d", i), JobSpec{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Push(burst(0, 10, 50)); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if st := j.Status(); st.State != JobDone || st.Completed != 10 {
			t.Errorf("job %s after drain: %+v", j.Name(), st)
		}
	}
}

func TestServiceResultsCursor(t *testing.T) {
	s := New(Config{Workers: 2})
	j, err := s.Submit("cursor", JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Push(burst(0, 15, 0)); err != nil {
		t.Fatal(err)
	}
	if err := j.CloseInput(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 5*time.Second)
	first, next := j.Results(0)
	if len(first) != 15 || next != 15 {
		t.Fatalf("Results(0) = %d items, next %d", len(first), next)
	}
	rest, next2 := j.Results(next)
	if len(rest) != 0 || next2 != 15 {
		t.Errorf("Results(%d) = %d items, next %d", next, len(rest), next2)
	}
	tail, _ := j.Results(10)
	if len(tail) != 5 {
		t.Errorf("Results(10) = %d items, want 5", len(tail))
	}
	over, nextOver := j.Results(99)
	if len(over) != 0 || nextOver != 15 {
		t.Errorf("Results(99) = %d items, next %d", len(over), nextOver)
	}
}

func TestServiceResultsRetentionBound(t *testing.T) {
	s := New(Config{Workers: 2})
	j, err := s.Submit("bounded", JobSpec{MaxResults: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	if _, err := j.Push(burst(0, n, 0)); err != nil {
		t.Fatal(err)
	}
	if err := j.CloseInput(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 10*time.Second)
	results, next := j.Results(0)
	if next != n {
		t.Errorf("cursor = %d, want %d (counts trimmed results)", next, n)
	}
	// The bound plus its quarter slack is the retention ceiling.
	if len(results) > 8+2 {
		t.Errorf("retained %d results, bound is 8 (+2 slack)", len(results))
	}
	if len(results) == 0 {
		t.Error("retention dropped everything")
	}
	// The retained tail is the most recent completions and stays pollable.
	if st := j.Status(); st.Completed != n {
		t.Errorf("completed = %d, want %d", st.Completed, n)
	}
	tail, next2 := j.Results(next - 2)
	if len(tail) != 2 || next2 != n {
		t.Errorf("Results(next-2) = %d items, next %d", len(tail), next2)
	}
}

func TestServiceMixedSkeletonJobs(t *testing.T) {
	// One service, three concurrent jobs with three different skeletons:
	// the skeleton-agnostic layer must stream every topology through the
	// same Push/Results surface, exactly once, off one shared calibration.
	const perJob = 30
	s := New(Config{Workers: 4, DefaultWindow: 6, WarmupTasks: 1000})
	specs := map[string]JobSpec{
		"farm": {},
		"pipe": {Skeleton: "pipeline", Stages: []StageSpec{{Name: "a"}, {Name: "b", CostFactor: 2}, {Name: "c"}}},
		"deal": {Skeleton: "dmap", WaveSize: 4},
	}
	handles := make(map[string]*Job, len(specs))
	base := 0
	for name, spec := range specs {
		j, err := s.Submit(name, spec)
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		handles[name] = j
		go func(j *Job, base int) {
			if _, err := j.Push(burst(base, perJob, 200)); err != nil {
				t.Errorf("push %s: %v", j.Name(), err)
				return
			}
			if err := j.CloseInput(); err != nil {
				t.Errorf("close %s: %v", j.Name(), err)
			}
		}(j, base)
		base += 1000
	}
	for _, j := range handles {
		waitDone(t, j, 30*time.Second)
	}
	for name, j := range handles {
		st := j.Status()
		if st.Completed != perJob {
			t.Errorf("job %s completed %d, want %d", name, st.Completed, perJob)
		}
		wantSkel := specs[name].Skeleton
		if wantSkel == "" {
			wantSkel = "farm"
		}
		if st.Skeleton != wantSkel {
			t.Errorf("job %s skeleton = %q, want %q", name, st.Skeleton, wantSkel)
		}
		results, _ := j.Results(0)
		seen := make(map[int]bool, perJob)
		for _, r := range results {
			if seen[r.ID] {
				t.Errorf("job %s task %d duplicated", name, r.ID)
			}
			seen[r.ID] = true
		}
		if len(seen) != perJob {
			t.Errorf("job %s: %d distinct results, want %d", name, len(seen), perJob)
		}
	}
	snap := s.Metrics().Snapshot()
	for _, c := range []string{"service_jobs_farm_total", "service_jobs_pipeline_total", "service_jobs_dmap_total"} {
		if snap[c] != 1 {
			t.Errorf("%s = %d, want 1", c, snap[c])
		}
	}
	if snap["service_calibrations_total"] != 1 {
		t.Errorf("calibrations = %d: every skeleton must reuse the one ranking", snap["service_calibrations_total"])
	}
}
