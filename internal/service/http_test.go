package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testServer spins up the full handler stack over a small service.
func testServer(t *testing.T) (*httptest.Server, *Service) {
	t.Helper()
	s := New(Config{Workers: 2, DefaultWindow: 4, WarmupTasks: 2})
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(srv.Close)
	return srv, s
}

// doJSON posts body to url and decodes the response into out (when non-nil).
func doJSON(t *testing.T, method, url string, body string, wantStatus int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s = %d (want %d): %s", method, url, resp.StatusCode, wantStatus, buf.String())
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v", buf.String(), err)
		}
	}
}

func TestHTTPJobLifecycle(t *testing.T) {
	srv, _ := testServer(t)
	base := srv.URL

	var created JobStatus
	doJSON(t, "POST", base+"/api/v1/jobs", `{"name":"alpha","window":4}`, http.StatusCreated, &created)
	if created.Name != "alpha" || created.State != JobAccepting || created.Window != 4 {
		t.Fatalf("created = %+v", created)
	}

	var accepted struct {
		Accepted int `json:"accepted"`
	}
	tasks := `{"tasks":[{"id":1,"sleep_us":50},{"id":2,"sleep_us":50},{"id":3,"sleep_us":50}]}`
	doJSON(t, "POST", base+"/api/v1/jobs/alpha/tasks", tasks, http.StatusAccepted, &accepted)
	if accepted.Accepted != 3 {
		t.Fatalf("accepted = %d", accepted.Accepted)
	}
	// Bare-array form is accepted too.
	doJSON(t, "POST", base+"/api/v1/jobs/alpha/tasks", `[{"id":4},{"id":5}]`, http.StatusAccepted, &accepted)
	if accepted.Accepted != 2 {
		t.Fatalf("accepted = %d", accepted.Accepted)
	}

	doJSON(t, "POST", base+"/api/v1/jobs/alpha/close", ``, http.StatusOK, nil)

	// Poll results until the job drains.
	deadline := time.Now().Add(10 * time.Second)
	var poll struct {
		Results []TaskResult `json:"results"`
		Next    int          `json:"next"`
		State   string       `json:"state"`
	}
	got := make(map[int]bool)
	cursor := 0
	for {
		doJSON(t, "GET", fmt.Sprintf("%s/api/v1/jobs/alpha/results?after=%d", base, cursor), ``, http.StatusOK, &poll)
		for _, r := range poll.Results {
			if got[r.ID] {
				t.Fatalf("task %d returned twice across polls", r.ID)
			}
			got[r.ID] = true
		}
		cursor = poll.Next
		if poll.State == JobDone && len(got) == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never drained: state %s, %d results", poll.State, len(got))
		}
		time.Sleep(5 * time.Millisecond)
	}

	var status JobStatus
	doJSON(t, "GET", base+"/api/v1/jobs/alpha", ``, http.StatusOK, &status)
	if status.Completed != 5 || status.State != JobDone {
		t.Fatalf("final status = %+v", status)
	}

	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	doJSON(t, "GET", base+"/api/v1/jobs", ``, http.StatusOK, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].Name != "alpha" {
		t.Fatalf("list = %+v", list)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, _ := testServer(t)
	base := srv.URL

	doJSON(t, "GET", base+"/api/v1/jobs/ghost", ``, http.StatusNotFound, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/ghost/tasks", `[{"id":1}]`, http.StatusNotFound, nil)
	doJSON(t, "POST", base+"/api/v1/jobs", `{not json`, http.StatusBadRequest, nil)
	doJSON(t, "POST", base+"/api/v1/jobs", `{"name":""}`, http.StatusBadRequest, nil)

	doJSON(t, "POST", base+"/api/v1/jobs", `{"name":"e"}`, http.StatusCreated, nil)
	doJSON(t, "POST", base+"/api/v1/jobs", `{"name":"e"}`, http.StatusConflict, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/e/tasks", `[]`, http.StatusBadRequest, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/e/tasks", `{"tasks":[{"id":-1}]}`, http.StatusBadRequest, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/e/tasks", `{"tasks":[{"id":1,"sleep_us":-5}]}`, http.StatusBadRequest, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/e/tasks", `{"tasks":[{"id":1,"spin":9000000000}]}`, http.StatusBadRequest, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/e/tasks", `{"tasks":[{"id":1,"bogus":true}]}`, http.StatusBadRequest, nil)
	doJSON(t, "GET", base+"/api/v1/jobs/e/results?after=banana", ``, http.StatusBadRequest, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/e/close", ``, http.StatusOK, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/e/close", ``, http.StatusConflict, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/e/tasks", `[{"id":1}]`, http.StatusConflict, nil)
}

func TestHTTPRemoveJob(t *testing.T) {
	srv, s := testServer(t)
	base := srv.URL

	doJSON(t, "POST", base+"/api/v1/jobs", `{"name":"rm"}`, http.StatusCreated, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/rm/tasks", `[{"id":1}]`, http.StatusAccepted, nil)

	// A job still accepting (or draining) cannot be removed.
	doJSON(t, "DELETE", base+"/api/v1/jobs/rm", ``, http.StatusConflict, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/rm/close", ``, http.StatusOK, nil)
	j, _ := s.Job("rm")
	waitDone(t, j, 5*time.Second)

	doJSON(t, "DELETE", base+"/api/v1/jobs/rm", ``, http.StatusOK, nil)
	doJSON(t, "GET", base+"/api/v1/jobs/rm", ``, http.StatusNotFound, nil)
	doJSON(t, "DELETE", base+"/api/v1/jobs/rm", ``, http.StatusNotFound, nil)
	// The name is free again after removal.
	doJSON(t, "POST", base+"/api/v1/jobs", `{"name":"rm"}`, http.StatusCreated, nil)
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	srv, s := testServer(t)
	var health struct {
		OK      bool `json:"ok"`
		Workers int  `json:"workers"`
	}
	doJSON(t, "GET", srv.URL+"/healthz", ``, http.StatusOK, &health)
	if !health.OK || health.Workers != 2 {
		t.Fatalf("health = %+v", health)
	}

	doJSON(t, "POST", srv.URL+"/api/v1/jobs", `{"name":"m"}`, http.StatusCreated, nil)
	doJSON(t, "POST", srv.URL+"/api/v1/jobs/m/tasks", `[{"id":1}]`, http.StatusAccepted, nil)
	doJSON(t, "POST", srv.URL+"/api/v1/jobs/m/close", ``, http.StatusOK, nil)
	j, _ := s.Job("m")
	waitDone(t, j, 5*time.Second)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"service_jobs_total 1",
		"service_tasks_submitted_total 1",
		"service_tasks_completed_total 1",
		"service_calibrations_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// FuzzSubmit fuzzes the task-submission decoder: it must never panic and
// must only ever accept batches within the documented bounds.
func FuzzSubmit(f *testing.F) {
	f.Add([]byte(`[{"id":1,"cost":2,"sleep_us":100}]`))
	f.Add([]byte(`{"tasks":[{"id":1},{"id":2,"spin":50}]}`))
	f.Add([]byte(`{"tasks":[]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(` [ {"id": 0} ] trailing`))
	f.Add([]byte(`{"tasks":[{"id":-3}]}`))
	f.Add([]byte(`nonsense`))
	f.Add([]byte(``))
	f.Add([]byte(`[{"id":1,"sleep_us":999999999999}]`))
	f.Fuzz(func(t *testing.T, body []byte) {
		specs, err := decodeTasks(body)
		if err != nil {
			if specs != nil {
				t.Fatalf("error %v with non-nil specs", err)
			}
			return
		}
		if len(specs) == 0 || len(specs) > maxTasksPerPush {
			t.Fatalf("accepted batch of %d tasks", len(specs))
		}
		for _, ts := range specs {
			if ts.ID < 0 || ts.SleepUS < 0 || ts.Spin < 0 || ts.Cost < 0 {
				t.Fatalf("accepted invalid task %+v", ts)
			}
			if ts.SleepUS > maxSleepUS || ts.Spin > maxSpin {
				t.Fatalf("accepted over-budget task %+v", ts)
			}
		}
	})
}

// TestHTTPOversizedBodyRejected413 checks the MaxBytesReader guard on the
// two hot unauthenticated decode paths: a body past the cap draws 413,
// not an unbounded buffer then a 400.
func TestHTTPOversizedBodyRejected413(t *testing.T) {
	srv, _ := testServer(t)
	base := srv.URL

	doJSON(t, "POST", base+"/api/v1/jobs", `{"name":"big"}`, http.StatusCreated, nil)

	// Anything past maxBodyBytes must be cut off at the transport — the
	// decoder never sees it, so even well-formed JSON draws 413.
	oversized := `{"tasks":[{"id":1,"sleep_us":1}` + strings.Repeat(" ", maxBodyBytes) + `]}`
	doJSON(t, "POST", base+"/api/v1/jobs/big/tasks", oversized, http.StatusRequestEntityTooLarge, nil)

	// Job creation is bounded too.
	doJSON(t, "POST", base+"/api/v1/jobs", `{"name":"`+strings.Repeat("x", maxBodyBytes+16)+`"}`,
		http.StatusRequestEntityTooLarge, nil)

	// The job is untouched and still usable after the oversized attempts.
	doJSON(t, "POST", base+"/api/v1/jobs/big/tasks", `[{"id":1,"sleep_us":10}]`, http.StatusAccepted, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/big/close", "", http.StatusOK, nil)
}

// TestHTTPShareInSpec drives the share knob over the wire: explicit
// non-positive shares draw 400, a valid share lands in the status.
func TestHTTPShareInSpec(t *testing.T) {
	srv, _ := testServer(t)
	base := srv.URL
	doJSON(t, "POST", base+"/api/v1/jobs", `{"name":"z","share":0}`, http.StatusBadRequest, nil)
	doJSON(t, "POST", base+"/api/v1/jobs", `{"name":"z","share":-2}`, http.StatusBadRequest, nil)
	var created JobStatus
	doJSON(t, "POST", base+"/api/v1/jobs", `{"name":"z","share":2.5}`, http.StatusCreated, &created)
	if created.Share != 2.5 {
		t.Fatalf("created share = %g, want 2.5", created.Share)
	}
	if created.Workers == 0 || len(created.AllocatedWorkers) != created.Workers {
		t.Fatalf("created workers = %d (%v), want a non-empty allocation", created.Workers, created.AllocatedWorkers)
	}
	doJSON(t, "POST", base+"/api/v1/jobs/z/close", "", http.StatusOK, nil)
}

func TestHTTPRejectsInvalidJobSpec(t *testing.T) {
	srv, _ := testServer(t)
	base := srv.URL
	cases := []struct {
		name string
		body string
	}{
		{"negative window", `{"name":"bad","window":-1}`},
		{"negative warmup", `{"name":"bad","warmup":-2}`},
		{"negative max_results", `{"name":"bad","max_results":-5}`},
		{"negative threshold", `{"name":"bad","threshold_factor":-0.5}`},
		{"unknown skeleton", `{"name":"bad","skeleton":"quantum"}`},
		{"pipeline without stages", `{"name":"bad","skeleton":"pipeline"}`},
		{"pipeline with one stage", `{"name":"bad","skeleton":"pipeline","stages":[{}]}`},
		{"pipeline with oversized factor", `{"name":"bad","skeleton":"pipeline","stages":[{"cost_factor":99},{}]}`},
		{"farm with stages", `{"name":"bad","stages":[{},{}]}`},
		{"dmap with negative wave", `{"name":"bad","skeleton":"dmap","wave_size":-3}`},
		{"dmap with bad alpha", `{"name":"bad","skeleton":"dmap","alpha":1.5}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doJSON(t, "POST", base+"/api/v1/jobs", tc.body, http.StatusBadRequest, nil)
		})
	}
	// The rejected name stays free: a valid spec under it must succeed.
	doJSON(t, "POST", base+"/api/v1/jobs", `{"name":"bad","window":4}`, http.StatusCreated, nil)
}
