package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"grasp/internal/metrics"
	"grasp/internal/trace"
)

// timelineWire mirrors timelineResponse for decoding in tests.
type timelineWire struct {
	Job    string `json:"job"`
	State  string `json:"state"`
	Events []struct {
		Seq  int64      `json:"seq"`
		At   int64      `json:"at"`
		Kind trace.Kind `json:"kind"`
		Node string     `json:"node"`
		Task int        `json:"task"`
		Msg  string     `json:"msg"`
	} `json:"events"`
	Next    int64 `json:"next"`
	Dropped int64 `json:"dropped"`
	Total   int64 `json:"total"`
	Phases  []struct {
		Name    string `json:"name"`
		StartNS int64  `json:"start_ns"`
		EndNS   int64  `json:"end_ns"`
	} `json:"phases"`
	Throughput []struct {
		StartNS     int64 `json:"start_ns"`
		Completions int   `json:"completions"`
	} `json:"throughput"`
}

// runTimelineJob creates a job, drains a handful of tasks through it, and
// returns once it is done — the setup every timeline assertion needs.
func runTimelineJob(t *testing.T, base string, s *Service, name string) {
	t.Helper()
	doJSON(t, "POST", base+"/api/v1/jobs", `{"name":"`+name+`","window":4}`, http.StatusCreated, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/"+name+"/tasks",
		`[{"id":1,"sleep_us":100},{"id":2,"sleep_us":100},{"id":3,"sleep_us":100},{"id":4,"sleep_us":100}]`,
		http.StatusAccepted, nil)
	doJSON(t, "POST", base+"/api/v1/jobs/"+name+"/close", ``, http.StatusOK, nil)
	j, _ := s.Job(name)
	waitDone(t, j, 10*time.Second)
}

func TestHTTPTimeline(t *testing.T) {
	srv, s := testServer(t)
	base := srv.URL
	runTimelineJob(t, base, s, "tl")

	var tl timelineWire
	doJSON(t, "GET", base+"/api/v1/jobs/tl/timeline", ``, http.StatusOK, &tl)
	if tl.Job != "tl" || tl.State != JobDone {
		t.Fatalf("timeline header = job %q state %q", tl.Job, tl.State)
	}
	if tl.Dropped != 0 || tl.Total != int64(len(tl.Events)) || tl.Next != tl.Total {
		t.Fatalf("cursor bookkeeping: dropped=%d total=%d next=%d events=%d",
			tl.Dropped, tl.Total, tl.Next, len(tl.Events))
	}
	kinds := make(map[trace.Kind]int)
	for i, e := range tl.Events {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		kinds[e.Kind]++
	}
	if kinds[trace.KindDispatch] != 4 || kinds[trace.KindComplete] != 4 {
		t.Fatalf("dispatch/complete = %d/%d, want 4/4 (kinds %v)",
			kinds[trace.KindDispatch], kinds[trace.KindComplete], kinds)
	}
	if kinds[trace.KindCalibrate] == 0 {
		t.Fatalf("no calibrate events: %v", kinds)
	}
	// Phase brackets: calibrate and warmup closed, stream closed by finish.
	phases := make(map[string]int64)
	for _, ph := range tl.Phases {
		phases[ph.Name] = ph.EndNS
	}
	for _, name := range []string{"calibrate", "warmup", "stream"} {
		end, ok := phases[name]
		if !ok {
			t.Fatalf("phase %q missing (have %v)", name, tl.Phases)
		}
		if end < 0 {
			t.Fatalf("phase %q never closed", name)
		}
	}
	// Throughput buckets account for every completion.
	sum := 0
	for _, b := range tl.Throughput {
		sum += b.Completions
	}
	if sum != 4 {
		t.Fatalf("throughput sums to %d completions, want 4", sum)
	}

	// Cursor paging: from the returned next, the log is drained.
	var tail timelineWire
	doJSON(t, "GET", base+"/api/v1/jobs/tl/timeline?after="+itoa64(tl.Next), ``, http.StatusOK, &tail)
	if len(tail.Events) != 0 || tail.Next != tl.Next {
		t.Fatalf("post-drain poll: %d events, next %d (want 0, %d)", len(tail.Events), tail.Next, tl.Next)
	}
	// A cursor far past the end clamps back (restart semantics).
	doJSON(t, "GET", base+"/api/v1/jobs/tl/timeline?after=999999", ``, http.StatusOK, &tail)
	if len(tail.Events) != 0 || tail.Next != tl.Total {
		t.Fatalf("overshoot clamp: %d events, next %d (want 0, %d)", len(tail.Events), tail.Next, tl.Total)
	}

	// Mid-log cursor returns the suffix with absolute sequence numbers.
	mid := tl.Total / 2
	doJSON(t, "GET", base+"/api/v1/jobs/tl/timeline?after="+itoa64(mid), ``, http.StatusOK, &tail)
	if int64(len(tail.Events)) != tl.Total-mid || tail.Events[0].Seq != mid {
		t.Fatalf("mid cursor: %d events from seq %d (want %d from %d)",
			len(tail.Events), tail.Events[0].Seq, tl.Total-mid, mid)
	}

	doJSON(t, "GET", base+"/api/v1/jobs/tl/timeline?after=-1", ``, http.StatusBadRequest, nil)
	doJSON(t, "GET", base+"/api/v1/jobs/tl/timeline?after=banana", ``, http.StatusBadRequest, nil)
	doJSON(t, "GET", base+"/api/v1/jobs/tl/timeline?bucket_ms=0", ``, http.StatusBadRequest, nil)
	doJSON(t, "GET", base+"/api/v1/jobs/tl/timeline?format=xml", ``, http.StatusBadRequest, nil)
	doJSON(t, "GET", base+"/api/v1/jobs/ghost/timeline", ``, http.StatusNotFound, nil)
	// Cluster disabled in this service → its timeline is a 404.
	doJSON(t, "GET", base+"/api/v1/cluster/timeline", ``, http.StatusNotFound, nil)
}

func TestHTTPTimelineCSV(t *testing.T) {
	srv, s := testServer(t)
	runTimelineJob(t, srv.URL, s, "csvjob")

	resp, err := http.Get(srv.URL + "/api/v1/jobs/csvjob/timeline?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("content type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "at_ns,kind,proc,node,task,dur_ns,value,msg" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) < 10 {
		t.Fatalf("csv has only %d lines:\n%s", len(lines), buf.String())
	}
}

// TestHTTPMetricsProm validates the upgraded exposition end-to-end: after
// real traffic through a durable service, /metrics parses as Prometheus
// text, declares the histogram families, and the task-latency histogram
// holds every completion.
func TestHTTPMetricsProm(t *testing.T) {
	s, err := Open(Config{Workers: 2, DefaultWindow: 4, WarmupTasks: 2, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(srv.Close)
	runTimelineJob(t, srv.URL, s, "prom")

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()

	stats, err := metrics.ParseProm(body)
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	if stats.Histograms < 2 {
		t.Fatalf("exposition declares %d histogram families, want ≥2", stats.Histograms)
	}
	for _, want := range []string{
		"# TYPE service_task_latency_seconds histogram",
		"# TYPE service_journal_fsync_seconds histogram",
		"service_task_latency_seconds_count 4",
		// Legacy counter sample lines survive the upgrade verbatim.
		"service_jobs_total 1",
		"service_tasks_completed_total 4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// itoa64 keeps the query-building call sites readable.
func itoa64(v int64) string { return strconv.FormatInt(v, 10) }
