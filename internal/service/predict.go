package service

// The service half of the predictive policy. The engine (predict.go in
// internal/skel/engine) forecasts per-worker completion times; this file
// forecasts each predictive job's queue depth (submitted − completed)
// through the same monitor.Probe + stats.TrendWindow machinery and drives
// three actuators from it:
//
//   - share autoscale: a local job whose forecast outgrows its window has
//     its fair share boosted through alloc.SetShare (capped, with
//     hysteresis), pulling worker slots from calmer jobs — and released
//     back when the queue drains;
//   - node demand: a cluster job instead records advisory demand for
//     extra worker nodes with the coordinator (SetWanted), surfaced on
//     /api/v1/nodes and the cluster_nodes_wanted gauge for an external
//     autoscaler to act on;
//   - admission control: once the forecast exceeds ShedFactor × window,
//     the job sheds pushes with ErrOverloaded (HTTP 429 + Retry-After)
//     instead of letting backpressure stall the daemon, resuming at half
//     the bound so admission does not flap.

import (
	"fmt"
	"math"
	"time"

	"grasp/internal/monitor"
	"grasp/internal/stats"
	"grasp/internal/trace"
)

const (
	// forecastWindow is how many queue-depth samples the trend line is
	// fitted over.
	forecastWindow = 8
	// maxShareBoost caps the autoscaler's share multiplier so one hot job
	// cannot starve the rest of the partition.
	maxShareBoost = 4
	// maxNodesWanted caps one job's advisory node demand.
	maxNodesWanted = 8
)

// forecastLoop samples a predictive job's queue depth until the job (or
// the service) is done, adjusting share/node demand and the admission
// state from the forecast. One goroutine per predictive job, started by
// startRunner.
func (s *Service) forecastLoop(j *Job) {
	depth := func() float64 {
		j.mu.Lock()
		d := j.submitted - j.completed
		j.mu.Unlock()
		return float64(d)
	}
	probe := monitor.NewProbe("queue:"+j.name, monitor.FuncSensor(depth),
		stats.NewTrendWindow(forecastWindow), forecastWindow)
	window := float64(j.spec.Window)
	shedBound := s.cfg.ShedFactor * window
	baseShare := j.spec.share()
	ticker := time.NewTicker(s.cfg.ForecastEvery)
	defer ticker.Stop()
	if j.pool != nil && s.cfg.Cluster != nil {
		defer s.cfg.Cluster.SetWanted(j.name, 0)
	}
	for {
		select {
		case <-j.done:
			return
		case <-s.closed:
			return
		case <-ticker.C:
		}
		probe.Sample()
		f := probe.Forecast()
		if math.IsNaN(f) {
			continue
		}
		if f < 0 {
			f = 0
		}

		// Admission control with hysteresis: shed above the bound, resume
		// below half of it.
		j.mu.Lock()
		j.queueForecast = f
		was := j.shedding
		if shedBound > 0 {
			if !was && f > shedBound {
				j.shedding = true
			} else if was && f < shedBound/2 {
				j.shedding = false
			}
		}
		shedding := j.shedding
		j.mu.Unlock()
		if shedding != was {
			msg := "admission control: shedding (forecast over bound)"
			if !shedding {
				msg = "admission control: accepting (queue drained)"
				s.reg.Counter("service_shed_recoveries_total").Inc()
			} else {
				s.reg.Counter("service_shed_activations_total").Inc()
			}
			j.tr.Append(trace.Event{At: s.l.Now(), Kind: trace.KindForecast, Value: f, Msg: msg})
			s.log.Info("admission control state change",
				"job", j.name, "shedding", shedding, "queue_forecast", f, "bound", shedBound)
		}

		// Share autoscale (local placement): boost toward forecast/window,
		// capped; release back to the spec share when the queue calms. The
		// 10% deadband keeps the allocator from rebalancing on noise.
		boost := 1.0
		if window > 0 && f > window {
			boost = math.Min(f/window, maxShareBoost)
		}
		target := baseShare * boost
		j.mu.Lock()
		cur := j.effShare
		j.mu.Unlock()
		if target != cur && (boost == 1 || math.Abs(target-cur) > 0.1*cur) {
			if j.pool == nil {
				s.alloc.SetShare(j.name, target)
			}
			j.mu.Lock()
			j.effShare = target
			j.mu.Unlock()
			j.tr.Append(trace.Event{
				At: s.l.Now(), Kind: trace.KindForecast, Value: f,
				Msg: fmt.Sprintf("share autoscaled to %.2f", target),
			})
			s.log.Info("share autoscaled",
				"job", j.name, "share", target, "queue_forecast", f)
		}

		// Node demand (cluster placement): advisory scale-out request,
		// cleared when the queue forecast fits the window again.
		if j.pool != nil && s.cfg.Cluster != nil {
			extra := 0
			if window > 0 && f > window {
				extra = int(math.Ceil(f/window)) - 1
				if extra > maxNodesWanted {
					extra = maxNodesWanted
				}
			}
			s.cfg.Cluster.SetWanted(j.name, extra)
		}
	}
}
