package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The fault-injection recovery suite for the durable control plane. All
// tests here match -run TestRecovery, which CI loops under -race. The
// crash tests use the crash-copy technique: while the first service is
// live, its data directory is copied byte-for-byte and a second service
// recovers from the copy. The copy is a legitimate point-in-time crash
// image — a SIGKILL preserves exactly what had reached the filesystem —
// and because the copier may catch an append mid-record, it exercises
// the torn-tail truncation path for free.

// copyDir snapshots src into a fresh directory — the simulated crash
// image of a running daemon's data dir.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// durableService opens a small durable service over dir.
func durableService(t *testing.T, dir string) *Service {
	t.Helper()
	s, err := Open(Config{Workers: 2, WarmupTasks: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertExactlyOnceIDs checks results cover ids 0..n-1 exactly once.
func assertExactlyOnceIDs(t *testing.T, results []TaskResult, n int) {
	t.Helper()
	seen := make(map[int]int, n)
	for _, r := range results {
		seen[r.ID]++
	}
	for id := 0; id < n; id++ {
		if seen[id] != 1 {
			t.Errorf("task %d delivered %d times, want exactly once", id, seen[id])
		}
	}
	if len(results) != n {
		t.Errorf("delivered %d results, want %d", len(results), n)
	}
}

// TestRecoveryGracefulShutdownAndReopen is the SIGTERM satellite's unit
// test: Close flushes a final snapshot + fsync, and a reopen restores the
// finished job — results, counters, cursors — from the compacted
// snapshot alone.
func TestRecoveryGracefulShutdownAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := durableService(t, dir)
	j, err := s.Submit("graceful", JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	if _, err := j.Push(burst(0, n, 100)); err != nil {
		t.Fatal(err)
	}
	if err := j.CloseInput(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 10*time.Second)
	if err := s.Close(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The flush compacts: the journal is folded into the snapshot, so the
	// current epoch's journal holds no records.
	w2, err := openWAL(dir, walOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if size := w2.store.JournalSize(); size != 0 {
		t.Errorf("journal holds %d bytes after graceful shutdown, want a compacted 0", size)
	}
	w2.close()

	s2 := durableService(t, dir)
	defer s2.Close()
	j2, ok := s2.Job("graceful")
	if !ok {
		t.Fatal("job lost across graceful restart")
	}
	st := j2.Status()
	if st.State != JobDone {
		t.Fatalf("recovered state = %s, want done", st.State)
	}
	if st.Submitted != n || st.Completed != n {
		t.Errorf("recovered counters submitted=%d completed=%d, want %d/%d", st.Submitted, st.Completed, n, n)
	}
	results, next := j2.Results(0)
	assertExactlyOnceIDs(t, results, n)
	if next != n {
		t.Errorf("recovered cursor next = %d, want %d", next, n)
	}
}

// TestRecoveryCloseIsIdempotent: double Close must not error (the signal
// handler and a deferred cleanup may both fire).
func TestRecoveryCloseIsIdempotent(t *testing.T) {
	s := durableService(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestRecoveryMidStreamCrash is the core fault injection: the data dir is
// crash-copied while a job streams, and the recovered service must finish
// the job with every task delivered exactly once — the replayed backlog
// (accepted but un-acked at the crash point) is re-delivered, and nothing
// a poller could already have seen is delivered twice.
func TestRecoveryMidStreamCrash(t *testing.T) {
	dir := t.TempDir()
	s := durableService(t, dir)
	defer s.Close()
	j, err := s.Submit("crashy", JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	if _, err := j.Push(burst(0, n, 500)); err != nil {
		t.Fatal(err)
	}
	// Let some tasks complete so the crash image holds a mix of acked and
	// pending work.
	deadline := time.Now().Add(10 * time.Second)
	for j.Status().Completed < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	crash := copyDir(t, dir) // SIGKILL equivalent: state as of this instant

	s2 := durableService(t, crash)
	defer s2.Close()
	j2, ok := s2.Job("crashy")
	if !ok {
		t.Fatal("job lost across crash")
	}
	// Recovery re-attached the runner; the job streams on. Push more work
	// post-recovery, then drain.
	if _, err := j2.Push(burst(n, 10, 100)); err != nil {
		t.Fatalf("push after recovery: %v", err)
	}
	if err := j2.CloseInput(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2, 20*time.Second)
	results, _ := j2.Results(0)
	assertExactlyOnceIDs(t, results, n+10)
	if st := j2.Status(); st.Lost != 0 {
		t.Errorf("recovered job lost %d tasks", st.Lost)
	}
}

// TestRecoveryCursorStability: a poller's cursor from before the crash
// remains valid after it — the recovered results slice preserves
// positions, so polling resumes where it left off with no gap and no
// repeat.
func TestRecoveryCursorStability(t *testing.T) {
	dir := t.TempDir()
	s := durableService(t, dir)
	defer s.Close()
	j, err := s.Submit("cursor", JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	if _, err := j.Push(burst(0, n, 200)); err != nil {
		t.Fatal(err)
	}
	// Poll a prefix before the crash.
	deadline := time.Now().Add(10 * time.Second)
	var cursor int
	var pre []TaskResult
	for len(pre) < 8 && time.Now().Before(deadline) {
		batch, next := j.Results(cursor)
		pre = append(pre, batch...)
		cursor = next
		time.Sleep(time.Millisecond)
	}

	crash := copyDir(t, dir)
	s2 := durableService(t, crash)
	defer s2.Close()
	j2, _ := s2.Job("cursor")
	if j2 == nil {
		t.Fatal("job lost across crash")
	}
	if err := j2.CloseInput(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2, 20*time.Second)
	// Resume polling from the pre-crash cursor: the union must be exactly
	// once. (The recovered service may not have seen every pre-crash ack —
	// un-acked tasks re-deliver — but everything at a cursor position the
	// poller already consumed is journaled, never re-delivered.)
	post, _ := j2.Results(cursor)
	assertExactlyOnceIDs(t, append(append([]TaskResult(nil), pre...), post...), n)
}

// TestRecoveryClosedJobDrains: a job whose input was closed before the
// crash recovers, re-delivers its backlog, and drains to done without any
// further client action.
func TestRecoveryClosedJobDrains(t *testing.T) {
	dir := t.TempDir()
	s := durableService(t, dir)
	defer s.Close()
	j, err := s.Submit("closed", JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 15
	if _, err := j.Push(burst(0, n, 300)); err != nil {
		t.Fatal(err)
	}
	if err := j.CloseInput(); err != nil {
		t.Fatal(err)
	}

	crash := copyDir(t, dir)
	s2 := durableService(t, crash)
	defer s2.Close()
	j2, _ := s2.Job("closed")
	if j2 == nil {
		t.Fatal("job lost across crash")
	}
	waitDone(t, j2, 20*time.Second)
	results, _ := j2.Results(0)
	assertExactlyOnceIDs(t, results, n)
	if st := j2.Status(); st.State != JobDone {
		t.Errorf("state = %s, want done", st.State)
	}
}

// TestRecoveryRemovedJobStaysRemoved: a removed job must not resurrect.
func TestRecoveryRemovedJobStaysRemoved(t *testing.T) {
	dir := t.TempDir()
	s := durableService(t, dir)
	j, err := s.Submit("removed", JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Push(burst(0, 5, 50)); err != nil {
		t.Fatal(err)
	}
	j.CloseInput()
	waitDone(t, j, 10*time.Second)
	if err := s.Remove("removed"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := durableService(t, dir)
	defer s2.Close()
	if _, ok := s2.Job("removed"); ok {
		t.Fatal("removed job resurrected by recovery")
	}
}

// TestRecoveryReplayDeterminism is the property the whole design rests
// on: after any sequence of journaled operations, replay(snapshot+log)
// must equal the live mirror state exactly. A random schedule of
// create/tasks/results/close/done/remove/cluster records — interleaved
// with compactions — is committed to a live wal, and a fresh wal opened
// over the same directory must reconstruct a byte-identical state.
func TestRecoveryReplayDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			// A small cap forces several compactions through the schedule.
			w, err := openWAL(dir, walOptions{maxBytes: 4096})
			if err != nil {
				t.Fatal(err)
			}
			spec := JobSpec{}.withDefaults(Config{}.withDefaults())
			spec.MaxResults = 8 // tiny retention so trims replay too
			jobs := []string{"a", "b", "c"}
			nextID := 0
			for step := 0; step < 200; step++ {
				name := jobs[rng.Intn(len(jobs))]
				var rec walRecord
				switch rng.Intn(10) {
				case 0, 1:
					rec = walRecord{Kind: walCreate, Job: name, Spec: &spec}
				case 2, 3, 4:
					tasks := make([]TaskSpec, 1+rng.Intn(4))
					for i := range tasks {
						tasks[i] = TaskSpec{ID: nextID, Cost: 1}
						nextID++
					}
					rec = walRecord{Kind: walTasks, Job: name, Tasks: tasks}
				case 5, 6, 7:
					rec = walRecord{Kind: walResults, Job: name, Results: []TaskResult{
						{ID: rng.Intn(max(nextID, 1)), Worker: rng.Intn(4), Micros: int64(rng.Intn(1000))},
					}}
				case 8:
					switch rng.Intn(3) {
					case 0:
						rec = walRecord{Kind: walClose, Job: name}
					case 1:
						rec = walRecord{Kind: walDone, Job: name, Lost: rng.Intn(3)}
					case 2:
						rec = walRecord{Kind: walRemove, Job: name}
					}
				case 9:
					rec = walRecord{Kind: walCluster, Cluster: nil}
				}
				if err := w.commit(rec); err != nil {
					t.Fatal(err)
				}
			}
			live := w.mirror()
			w.close() // includes a final compaction; replay must still agree

			replayed, err := openWAL(dir, walOptions{maxBytes: 4096})
			if err != nil {
				t.Fatal(err)
			}
			defer replayed.close()
			if got := replayed.mirror(); !bytes.Equal(got, live) {
				t.Fatalf("replayed state diverges from live mirror:\nlive:     %s\nreplayed: %s", live, got)
			}
		})
	}
}

// TestRecoveryTornTail: garbage at the journal's tail (the crash cut an
// append mid-record) must not block recovery — the valid prefix replays
// and the service opens normally.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	s := durableService(t, dir)
	j, err := s.Submit("torn", JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Push(burst(0, 10, 50)); err != nil {
		t.Fatal(err)
	}
	j.CloseInput()
	waitDone(t, j, 10*time.Second)
	// No graceful close: leave the journal populated, then tear its tail.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	tore := false
	for _, e := range entries {
		if len(e.Name()) > 8 && e.Name()[:8] == "journal-" {
			path := filepath.Join(dir, e.Name())
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte{0xA7, 0xFF, 0x00}) // half a header
			f.Close()
			tore = true
		}
	}
	if !tore {
		t.Fatal("no journal file found to tear")
	}
	s2 := durableService(t, dir)
	defer s2.Close()
	j2, ok := s2.Job("torn")
	if !ok {
		t.Fatal("job lost to torn tail")
	}
	if st := j2.Status(); st.State != JobDone && st.State != JobDraining && st.State != JobAccepting {
		t.Fatalf("unexpected recovered state %q", st.State)
	}
}

// TestRecoveryWalStateJSONStable guards the on-disk schema: a walState
// round-trips through JSON without loss (field renames would silently
// orphan journals written by earlier builds).
func TestRecoveryWalStateJSONStable(t *testing.T) {
	st := walState{Jobs: map[string]*walJob{
		"j": {
			Spec:        JobSpec{}.withDefaults(Config{}.withDefaults()),
			Closed:      true,
			Submitted:   3,
			Pending:     []TaskSpec{{ID: 2, Cost: 1}},
			Results:     []TaskResult{{ID: 0, Worker: 1, Micros: 42}},
			ResultsBase: 1,
		},
	}}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back walState
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	raw2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatalf("walState does not round-trip:\n%s\n%s", raw, raw2)
	}
}
