package service_test

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"grasp/internal/cluster"
	"grasp/internal/service"
)

// startClusterDaemon builds a service with a live coordinator and n
// in-process workers running the real HTTP worker runtime.
func startClusterDaemon(t *testing.T, n int) (*service.Service, *cluster.Coordinator) {
	s, coord, _ := startClusterDaemonURL(t, n)
	return s, coord
}

// startClusterDaemonURL additionally exposes the coordinator's URL so
// tests can register workers mid-stream.
func startClusterDaemonURL(t *testing.T, n int) (*service.Service, *cluster.Coordinator, string) {
	t.Helper()
	coord := cluster.NewCoordinator(cluster.Config{
		DeadAfter:    500 * time.Millisecond,
		MaxLeaseWait: 200 * time.Millisecond,
	})
	t.Cleanup(coord.Close)
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	for i := 0; i < n; i++ {
		startClusterWorker(t, srv.URL, string(rune('a'+i)))
	}
	s := service.New(service.Config{
		Workers:     2,
		WarmupTasks: 4,
		Cluster:     coord,
	})
	return s, coord, srv.URL
}

// startClusterWorker registers one in-process worker runtime.
func startClusterWorker(t *testing.T, url, id string) *cluster.Worker {
	t.Helper()
	w, err := cluster.StartWorker(cluster.WorkerConfig{
		Coordinator: url,
		ID:          id,
		Capacity:    2,
		BenchSpin:   10_000,
		Heartbeat:   50 * time.Millisecond,
		LeaseWait:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

func TestClusterPlacementJobRunsOnWorkerNodes(t *testing.T) {
	s, _ := startClusterDaemon(t, 2)
	j, err := s.Submit("remote", service.JobSpec{Placement: service.PlacementCluster})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]service.TaskSpec, 30)
	for i := range specs {
		specs[i] = service.TaskSpec{ID: i, SleepUS: 300}
	}
	if _, err := j.Push(specs); err != nil {
		t.Fatal(err)
	}
	if err := j.CloseInput(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("cluster job never drained")
	}

	st := j.Status()
	if st.Placement != service.PlacementCluster {
		t.Errorf("placement = %q", st.Placement)
	}
	if st.Completed != 30 || st.Failures != 0 {
		t.Errorf("completed=%d failures=%d", st.Completed, st.Failures)
	}
	if len(st.Nodes) != 2 {
		t.Fatalf("per-node status = %+v, want 2 nodes", st.Nodes)
	}
	var total int64
	for _, nc := range st.Nodes {
		if nc.Completed == 0 {
			t.Errorf("node %s completed nothing: job did not span the cluster", nc.Node)
		}
		total += nc.Completed
	}
	if total != 30 {
		t.Errorf("per-node completions sum to %d, want 30", total)
	}

	// Results carry the executing node and stay exactly-once.
	results, _ := j.Results(0)
	if len(results) != 30 {
		t.Fatalf("results = %d", len(results))
	}
	seen := make(map[int]bool)
	for _, r := range results {
		if r.Node == "" {
			t.Fatalf("result %d has no node", r.ID)
		}
		if seen[r.ID] {
			t.Fatalf("task %d duplicated", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestClusterPlacementPipelineJob(t *testing.T) {
	s, _ := startClusterDaemon(t, 2)
	j, err := s.Submit("remote-pipe", service.JobSpec{
		Skeleton:  "pipeline",
		Placement: service.PlacementCluster,
		Stages:    []service.StageSpec{{Name: "a"}, {Name: "b", CostFactor: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]service.TaskSpec, 12)
	for i := range specs {
		specs[i] = service.TaskSpec{ID: i, SleepUS: 200}
	}
	if _, err := j.Push(specs); err != nil {
		t.Fatal(err)
	}
	j.CloseInput()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("cluster pipeline never drained")
	}
	if st := j.Status(); st.Completed != 12 {
		t.Errorf("completed = %d", st.Completed)
	}
}

func TestPushUnblocksWhenEveryNodeDies(t *testing.T) {
	s, coord := startClusterDaemon(t, 1)
	j, err := s.Submit("doomed", service.JobSpec{Placement: service.PlacementCluster})
	if err != nil {
		t.Fatal(err)
	}
	// Far more slow tasks than the window: the push blocks under
	// backpressure while the only node is evicted out from under it.
	specs := make([]service.TaskSpec, 200)
	for i := range specs {
		specs[i] = service.TaskSpec{ID: i, SleepUS: 50_000}
	}
	type outcome struct {
		n   int
		err error
	}
	pushed := make(chan outcome, 1)
	go func() {
		n, err := j.Push(specs)
		pushed <- outcome{n, err}
	}()
	time.Sleep(100 * time.Millisecond) // let the push wedge against the window
	if err := coord.Evict("a"); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-pushed:
		if out.err == nil {
			t.Errorf("push of %d tasks returned no error after total node loss", out.n)
		}
		if out.n == len(specs) {
			t.Error("push claims every task was accepted despite the dead cluster")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("push still blocked after every node died")
	}
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job never finished after losing its only node")
	}
}

// TestNodeJoinsRunningClusterJob is the join-symmetric counterpart of the
// node-loss tests: a job submitted with one live node gains a second node
// that registers mid-stream — through the coordinator's membership events,
// the growable pool, and the engine's membership deltas — and the joiner
// demonstrably executes tasks while the stream stays exactly-once.
func TestNodeJoinsRunningClusterJob(t *testing.T) {
	s, _, url := startClusterDaemonURL(t, 1)
	j, err := s.Submit("elastic", service.JobSpec{Placement: service.PlacementCluster})
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Status().Workers; got != 2 {
		t.Fatalf("membership at submit = %d slots, want 2 (one node, capacity 2)", got)
	}

	// Phase 1: saturate the lone node with slow tasks from a background
	// push so the stream is demonstrably mid-flight when the joiner lands.
	phase1 := make([]service.TaskSpec, 30)
	for i := range phase1 {
		phase1[i] = service.TaskSpec{ID: i, SleepUS: 10_000}
	}
	pushed := make(chan error, 1)
	go func() {
		_, err := j.Push(phase1)
		pushed <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	for j.Status().Completed < 4 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	// The second node registers mid-stream.
	startClusterWorker(t, url, "joiner")
	for time.Now().Before(deadline) {
		if st := j.Status(); st.Workers >= 4 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := j.Status(); st.Workers < 4 {
		t.Fatalf("membership never grew: %d slots, want 4 after the join", st.Workers)
	}
	if err := <-pushed; err != nil {
		t.Fatal(err)
	}

	// Phase 2 traffic lands on both nodes.
	phase2 := make([]service.TaskSpec, 30)
	for i := range phase2 {
		phase2[i] = service.TaskSpec{ID: 30 + i, SleepUS: 5_000}
	}
	if _, err := j.Push(phase2); err != nil {
		t.Fatal(err)
	}
	if err := j.CloseInput(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job never drained after the join")
	}

	st := j.Status()
	if st.Completed != 60 || st.Failures != 0 || st.Lost != 0 {
		t.Fatalf("completed=%d failures=%d lost=%d, want a clean 60", st.Completed, st.Failures, st.Lost)
	}
	var joiner int64
	for _, nc := range st.Nodes {
		if nc.Node == "joiner" {
			joiner = nc.Completed
		}
	}
	if joiner == 0 {
		t.Errorf("joined node executed nothing: per-node tallies %+v", st.Nodes)
	}
	results, _ := j.Results(0)
	seen := map[int]bool{}
	joinerResults := 0
	for _, r := range results {
		if seen[r.ID] {
			t.Fatalf("task %d duplicated", r.ID)
		}
		seen[r.ID] = true
		if r.Node == "joiner" {
			joinerResults++
		}
	}
	if len(seen) != 60 {
		t.Fatalf("%d distinct results, want 60", len(seen))
	}
	if joinerResults == 0 {
		t.Error("no result attributed to the joined node")
	}
	if rep := j.Report(); rep.WorkersAdded < 2 {
		t.Errorf("engine admitted %d workers, want the joiner's 2 slots", rep.WorkersAdded)
	}
}

func TestClusterPlacementUnavailable(t *testing.T) {
	// No coordinator at all: placement must be refused as unavailable, not
	// silently run locally.
	s := service.New(service.Config{Workers: 2})
	if _, err := s.Submit("j", service.JobSpec{Placement: service.PlacementCluster}); !errors.Is(err, service.ErrNoCluster) {
		t.Errorf("no-coordinator err = %v, want ErrNoCluster", err)
	}

	// A coordinator with no live nodes is just as unavailable.
	coord := cluster.NewCoordinator(cluster.Config{})
	defer coord.Close()
	s2 := service.New(service.Config{Workers: 2, Cluster: coord})
	if _, err := s2.Submit("j", service.JobSpec{Placement: service.PlacementCluster}); !errors.Is(err, service.ErrNoCluster) {
		t.Errorf("no-nodes err = %v, want ErrNoCluster", err)
	}

	// And a bogus placement is a validation error.
	if _, err := s2.Submit("j", service.JobSpec{Placement: "mars"}); !errors.Is(err, service.ErrInvalid) {
		t.Errorf("bad placement err = %v, want ErrInvalid", err)
	}
}
