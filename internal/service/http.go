package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// maxBodyBytes bounds a request body; maxTasksPerPush bounds one batch;
// maxSleepUS and maxSpin bound one task's simulated work so a single
// request cannot wedge the shared platform's workers.
const (
	maxBodyBytes    = 8 << 20
	maxTasksPerPush = 100000
	maxSleepUS      = 60_000_000
	maxSpin         = 1_000_000_000
)

// createRequest is the POST /api/v1/jobs wire form.
type createRequest struct {
	Name string `json:"name"`
	JobSpec
}

// tasksEnvelope is the POST .../tasks wire form: either a bare JSON array
// of tasks or an object wrapping one.
type tasksEnvelope struct {
	Tasks []TaskSpec `json:"tasks"`
}

// decodeTasks parses a task-submission body: `[{...}, ...]` or
// `{"tasks": [{...}, ...]}`. It rejects unknown fields, oversized batches,
// and nonsensical task parameters.
func decodeTasks(body []byte) ([]TaskSpec, error) {
	trimmed := firstByte(body)
	var specs []TaskSpec
	switch trimmed {
	case '[':
		if err := strictUnmarshal(body, &specs); err != nil {
			return nil, err
		}
	case '{':
		var env tasksEnvelope
		if err := strictUnmarshal(body, &env); err != nil {
			return nil, err
		}
		specs = env.Tasks
	default:
		return nil, errors.New("body must be a JSON array of tasks or {\"tasks\": [...]}")
	}
	if len(specs) == 0 {
		return nil, errors.New("no tasks in submission")
	}
	if len(specs) > maxTasksPerPush {
		return nil, fmt.Errorf("%d tasks exceeds the %d per-request limit", len(specs), maxTasksPerPush)
	}
	for i, ts := range specs {
		if ts.ID < 0 {
			return nil, fmt.Errorf("task %d: negative id %d", i, ts.ID)
		}
		if ts.SleepUS < 0 || ts.Spin < 0 {
			return nil, fmt.Errorf("task %d: negative work parameters", i)
		}
		if ts.SleepUS > maxSleepUS {
			return nil, fmt.Errorf("task %d: sleep_us %d exceeds 60s cap", i, ts.SleepUS)
		}
		if ts.Spin > maxSpin {
			return nil, fmt.Errorf("task %d: spin %d exceeds %d cap", i, ts.Spin, maxSpin)
		}
		if ts.Cost < 0 {
			return nil, fmt.Errorf("task %d: negative cost", i)
		}
	}
	return specs, nil
}

// firstByte returns the first non-whitespace byte of b (0 when none).
func firstByte(b []byte) byte {
	for _, c := range b {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return c
	}
	return 0
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing data.
func strictUnmarshal(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// NewHandler returns the daemon's full handler stack over s: job creation,
// task streaming, status, result polling, metrics, and health.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "workers": s.Workers()})
	})

	// Prometheus text exposition. The two registries use disjoint name
	// prefixes (service_/cluster_), so the concatenation is itself a valid
	// exposition. Legacy "name value" sample lines are unchanged — the new
	// format only adds # HELP/# TYPE comments and histogram series.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, s.Metrics().RenderProm())
		if c := s.Cluster(); c != nil {
			io.WriteString(w, c.Metrics().RenderProm())
		}
	})

	// Node administration: inspect the cluster's worker registrations and
	// evict a node (its outstanding work fails over to the survivors).
	mux.HandleFunc("GET /api/v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		c := s.Cluster()
		if c == nil {
			writeError(w, http.StatusNotFound, errors.New("cluster disabled (start graspd with -cluster-listen)"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"nodes": c.Nodes(), "wanted": c.NodesWanted()})
	})

	mux.HandleFunc("DELETE /api/v1/nodes/{id}", func(w http.ResponseWriter, r *http.Request) {
		c := s.Cluster()
		if c == nil {
			writeError(w, http.StatusNotFound, errors.New("cluster disabled (start graspd with -cluster-listen)"))
			return
		}
		id := r.PathValue("id")
		if err := c.Evict(id); err != nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("no live node %q", id))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"evicted": id})
	})

	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		body, err := readBody(w, r)
		if err != nil {
			writeBodyError(w, err)
			return
		}
		var req createRequest
		if err := strictUnmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		j, err := s.Submit(req.Name, req.JobSpec)
		if err != nil {
			status := http.StatusInternalServerError // e.g. calibration failed
			switch {
			case errors.Is(err, ErrJobExists):
				status = http.StatusConflict
			case errors.Is(err, ErrInvalid):
				status = http.StatusBadRequest
			case errors.Is(err, ErrNoCluster):
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusCreated, j.Status())
	})

	mux.HandleFunc("DELETE /api/v1/jobs/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if _, ok := s.Job(name); !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", name))
			return
		}
		if err := s.Remove(name); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"removed": name})
	})

	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		statuses := s.Statuses()
		sort.Slice(statuses, func(i, k int) bool { return statuses[i].Name < statuses[k].Name })
		writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
	})

	mux.HandleFunc("GET /api/v1/jobs/{name}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("name")))
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	})

	mux.HandleFunc("POST /api/v1/jobs/{name}/tasks", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("name")))
			return
		}
		body, err := readBody(w, r)
		if err != nil {
			writeBodyError(w, err)
			return
		}
		specs, err := decodeTasks(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Push blocks under backpressure: the bounded in-flight window
		// propagates all the way to the HTTP client. Admission control
		// pre-empts that block: an overloaded predictive job sheds the whole
		// batch with 429 + Retry-After instead of stalling the request.
		n, err := j.Push(specs)
		if err != nil {
			if errors.Is(err, ErrOverloaded) {
				secs := int(math.Ceil(s.RetryAfter().Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeError(w, http.StatusTooManyRequests, err)
				return
			}
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"accepted": n})
	})

	mux.HandleFunc("POST /api/v1/jobs/{name}/close", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("name")))
			return
		}
		if err := j.CloseInput(); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	})

	mux.HandleFunc("GET /api/v1/jobs/{name}/timeline", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("name")))
			return
		}
		// Same ordering rationale as the results endpoint: state is read
		// before the events, so a "done" response cannot be missing the
		// final completion events.
		state := j.Status().State
		serveTimeline(w, r, j.Trace(), j.Name(), state)
	})

	// The coordinator's own timeline: cluster-side dispatch/complete events
	// across all jobs, on the coordinator's clock.
	mux.HandleFunc("GET /api/v1/cluster/timeline", func(w http.ResponseWriter, r *http.Request) {
		c := s.Cluster()
		if c == nil {
			writeError(w, http.StatusNotFound, errors.New("cluster disabled (start graspd with -cluster-listen)"))
			return
		}
		serveTimeline(w, r, c.Trace(), "", "")
	})

	mux.HandleFunc("GET /api/v1/jobs/{name}/results", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("name")))
			return
		}
		after := 0
		if q := r.URL.Query().Get("after"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("after must be a non-negative integer"))
				return
			}
			after = v
		}
		// State is read before results: a "done" here guarantees every
		// result is already appended, so a poller that stops on done
		// cannot miss the tail. The reverse order would race the final
		// completions.
		state := j.Status().State
		results, next := j.Results(after)
		writeJSON(w, http.StatusOK, map[string]any{
			"results": results,
			"next":    next,
			"state":   state,
		})
	})

	return mux
}

// readBody slurps a bounded request body through http.MaxBytesReader, so
// an oversized upload is cut off at the transport (the server also closes
// the connection) instead of being buffered and then rejected — job
// creation and task submission are the daemon's hot unauthenticated
// paths, and an unbounded decode there is a one-request memory DoS.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	return body, nil
}

// writeBodyError maps a readBody failure onto its status: 413 for an
// oversized body, 400 otherwise.
func writeBodyError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("body exceeds %d bytes", tooLarge.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// writeJSON encodes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError reports err as {"error": "..."}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
