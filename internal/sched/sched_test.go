package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixedChunk(t *testing.T) {
	p := FixedChunk{K: 5}
	if got := p.Chunk(100, 4, 0.25); got != 5 {
		t.Errorf("Chunk = %d", got)
	}
	if got := p.Chunk(3, 4, 0.25); got != 3 {
		t.Errorf("Chunk near end = %d", got)
	}
	if got := p.Chunk(0, 4, 0.25); got != 0 {
		t.Errorf("Chunk empty = %d", got)
	}
	if got := (FixedChunk{K: 0}).Chunk(10, 4, 0.25); got != 1 {
		t.Errorf("zero K should clamp to 1, got %d", got)
	}
}

func TestGuidedShrinks(t *testing.T) {
	p := Guided{}
	remaining := 1000
	var prev int
	first := true
	for remaining > 0 {
		c := p.Chunk(remaining, 8, 0.125)
		if c < 1 {
			t.Fatalf("chunk %d with %d remaining", c, remaining)
		}
		if !first && c > prev {
			t.Fatalf("guided chunk grew: %d after %d", c, prev)
		}
		prev, first = c, false
		remaining -= c
	}
	// First chunk should be remaining/P = 125.
	if got := (Guided{}).Chunk(1000, 8, 0); got != 125 {
		t.Errorf("first guided chunk = %d, want 125", got)
	}
}

func TestGuidedFactor(t *testing.T) {
	if got := (Guided{F: 2}).Chunk(1000, 8, 0); got != 63 {
		t.Errorf("guided F=2 chunk = %d, want 63", got)
	}
	if got := (Guided{F: -1}).Chunk(100, 4, 0); got != 25 {
		t.Errorf("bad F should default to 1: %d", got)
	}
}

func TestWeightedChunkProportional(t *testing.T) {
	p := Weighted{F: 2}
	fast := p.Chunk(100, 4, 0.5)
	slow := p.Chunk(100, 4, 0.1)
	if fast <= slow {
		t.Errorf("fast worker chunk %d should exceed slow %d", fast, slow)
	}
	if fast != 25 {
		t.Errorf("fast chunk = %d, want 25", fast)
	}
	// Zero weight falls back to uniform share.
	uniform := p.Chunk(100, 4, 0)
	if uniform != 13 {
		t.Errorf("uniform fallback = %d, want 13", uniform)
	}
}

func TestSingle(t *testing.T) {
	if got := (Single{}).Chunk(50, 4, 0.3); got != 1 {
		t.Errorf("Single chunk = %d", got)
	}
	if got := (Single{}).Chunk(0, 4, 0.3); got != 0 {
		t.Errorf("Single empty = %d", got)
	}
}

func TestFactoringRounds(t *testing.T) {
	fa := NewFactoring()
	// 4 workers, 160 tasks: first round chunks of ceil(160/8)=20 each.
	rem := 160
	var chunks []int
	for i := 0; i < 4; i++ {
		c := fa.Chunk(rem, 4, 0)
		chunks = append(chunks, c)
		rem -= c
	}
	for _, c := range chunks {
		if c != 20 {
			t.Fatalf("round 1 chunks = %v, want all 20", chunks)
		}
	}
	// Second round: remaining 80 → chunk 10.
	if c := fa.Chunk(rem, 4, 0); c != 10 {
		t.Errorf("round 2 chunk = %d, want 10", c)
	}
}

func TestChunkPoliciesDrainExactly(t *testing.T) {
	// Every policy must hand out exactly n tasks in total, never 0 while
	// work remains, never more than remaining.
	mk := []func() ChunkPolicy{
		func() ChunkPolicy { return FixedChunk{K: 7} },
		func() ChunkPolicy { return Guided{} },
		func() ChunkPolicy { return Guided{F: 2} },
		func() ChunkPolicy { return Weighted{F: 2} },
		func() ChunkPolicy { return Single{} },
		func() ChunkPolicy { return NewFactoring() },
	}
	rng := rand.New(rand.NewSource(5))
	for _, factory := range mk {
		for trial := 0; trial < 20; trial++ {
			p := factory()
			n := 1 + rng.Intn(500)
			workers := 1 + rng.Intn(16)
			remaining := n
			var dispatched int
			for remaining > 0 {
				weight := rng.Float64()
				c := p.Chunk(remaining, workers, weight)
				if c < 1 || c > remaining {
					t.Fatalf("%s: chunk %d with remaining %d", p, c, remaining)
				}
				remaining -= c
				dispatched += c
			}
			if dispatched != n {
				t.Fatalf("%s: dispatched %d of %d", p, dispatched, n)
			}
			if p.Chunk(0, workers, 0.5) != 0 {
				t.Fatalf("%s: nonzero chunk on empty queue", p)
			}
		}
	}
}

func TestRoundRobin(t *testing.T) {
	p := RoundRobin(7, 3)
	if fmt.Sprint(p) != "[[0 3 6] [1 4] [2 5]]" {
		t.Errorf("RoundRobin = %v", p)
	}
	if p.Total() != 7 {
		t.Errorf("Total = %d", p.Total())
	}
}

func TestBlocks(t *testing.T) {
	p := Blocks(7, 3)
	if fmt.Sprint(p) != "[[0 1 2] [3 4] [5 6]]" {
		t.Errorf("Blocks = %v", p)
	}
	if fmt.Sprint(p.Sizes()) != "[3 2 2]" {
		t.Errorf("Sizes = %v", p.Sizes())
	}
}

func TestBlocksFewerTasksThanWorkers(t *testing.T) {
	p := Blocks(2, 5)
	if p.Total() != 2 || len(p) != 5 {
		t.Errorf("Blocks = %v", p)
	}
}

func TestWeightedBlocks(t *testing.T) {
	p := WeightedBlocks(100, []float64{3, 1})
	if len(p[0]) != 75 || len(p[1]) != 25 {
		t.Errorf("Sizes = %v, want [75 25]", p.Sizes())
	}
	if p.Total() != 100 {
		t.Errorf("Total = %d", p.Total())
	}
	// Contiguity.
	if p[0][0] != 0 || p[0][74] != 74 || p[1][0] != 75 {
		t.Error("blocks not contiguous")
	}
}

func TestWeightedBlocksDegenerate(t *testing.T) {
	p := WeightedBlocks(10, []float64{0, 0})
	if fmt.Sprint(p.Sizes()) != "[5 5]" {
		t.Errorf("all-zero weights = %v", p.Sizes())
	}
	if WeightedBlocks(5, nil).Total() != 5 {
		t.Error("nil weights should still assign all tasks")
	}
	// Negative weights treated as zero.
	p = WeightedBlocks(10, []float64{-1, 1})
	if len(p[1]) != 10 {
		t.Errorf("negative weight worker should get nothing: %v", p.Sizes())
	}
}

func TestPropPartitionsCoverExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300)
		workers := 1 + rng.Intn(12)
		weights := make([]float64, workers)
		for i := range weights {
			weights[i] = rng.Float64()
		}
		for _, p := range []Partition{
			RoundRobin(n, workers), Blocks(n, workers), WeightedBlocks(n, weights),
		} {
			seen := make(map[int]bool)
			for _, tasks := range p {
				for _, idx := range tasks {
					if idx < 0 || idx >= n || seen[idx] {
						return false
					}
					seen[idx] = true
				}
			}
			if len(seen) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []ChunkPolicy{
		FixedChunk{K: 3}, Guided{}, Weighted{}, Single{}, NewFactoring(),
	} {
		if p.String() == "" {
			t.Errorf("empty String for %T", p)
		}
	}
}
