package sched_test

import (
	"fmt"

	"grasp/internal/sched"
)

// ExampleGuided shows guided self-scheduling's shrinking chunks: early
// requests take big blocks, the tail is balanced with small ones.
func ExampleGuided() {
	policy := sched.Guided{}
	remaining := 100
	for remaining > 0 {
		chunk := policy.Chunk(remaining, 4, 0.25)
		fmt.Print(chunk, " ")
		remaining -= chunk
	}
	fmt.Println()
	// Output:
	// 25 19 14 11 8 6 5 3 3 2 1 1 1 1
}

// ExampleWeightedBlocks partitions tasks proportionally to calibrated
// speeds for a static deal.
func ExampleWeightedBlocks() {
	p := sched.WeightedBlocks(10, []float64{3, 1})
	fmt.Println(p.Sizes())
	// Output:
	// [8 2]
}
