package sched

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// WorkerChunker is an optional ChunkPolicy refinement: policies that size
// chunks per requesting worker implement it, and the farm prefers it over
// the worker-blind Chunk when present.
type WorkerChunker interface {
	// ChunkFor returns the number of tasks to hand the given worker.
	ChunkFor(worker, remaining, workers int, weight float64) int
}

// TimeObserver is an optional ChunkPolicy refinement: the farm feeds every
// completed task's (worker, execution time) back to policies that
// implement it, closing the loop that makes granularity adaptive.
type TimeObserver interface {
	// ObserveTime records one task execution on the given worker.
	ObserveTime(worker int, d time.Duration)
}

// AdaptiveChunk adapts the granularity ("blocking of communications") to
// the observed per-worker task times: each worker's chunk is sized so its
// batch takes roughly Target of wall time on that worker,
//
//	chunk_w = Target / (EWMA(time) + Safety·σ(time)),
//
// so fast nodes amortise dispatch traffic with big batches while slow — or
// newly pressured — nodes drop to fine-grained chunks that keep the tail
// balanced. The σ term makes the sizing variance-aware: on heavy-tailed
// workloads a batch sized by the mean alone would regularly catch several
// expensive outliers and straggle, so dispersion shrinks the batch. A
// guided-style tail guard (chunk ≤ ⌈remaining/2P⌉ once small) keeps the
// final batches fine regardless.
//
// This is the dynamic counterpart of the static policies above: where
// Weighted trusts the calibration snapshot, AdaptiveChunk keeps
// re-estimating throughout execution — the "ability to adapt all of these
// factors dynamically" the paper calls for.
//
// Until a worker has an observation it receives single tasks (probing).
// AdaptiveChunk is stateful and safe for concurrent use; use one per farm
// run.
type AdaptiveChunk struct {
	// Target is the desired wall time of one dispatched batch (required).
	Target time.Duration
	// Alpha is the EWMA smoothing factor in (0,1]; 0 defaults to 0.3.
	Alpha float64
	// Safety scales the dispersion penalty (default 1; negative disables).
	Safety float64
	// MaxK caps the chunk size (default 64).
	MaxK int

	mu   sync.Mutex
	mean map[int]float64 // worker → smoothed task seconds
	vari map[int]float64 // worker → smoothed squared deviation
}

// NewAdaptiveChunk returns an adaptive policy aiming at the given batch
// time.
func NewAdaptiveChunk(target time.Duration) *AdaptiveChunk {
	return &AdaptiveChunk{Target: target}
}

// ObserveTime implements TimeObserver.
func (a *AdaptiveChunk) ObserveTime(worker int, d time.Duration) {
	if d <= 0 {
		return
	}
	alpha := a.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.mean == nil {
		a.mean = make(map[int]float64)
		a.vari = make(map[int]float64)
	}
	s := d.Seconds()
	prev, ok := a.mean[worker]
	if !ok {
		a.mean[worker] = s
		a.vari[worker] = 0
		return
	}
	dev := s - prev
	a.mean[worker] = alpha*s + (1-alpha)*prev
	a.vari[worker] = alpha*dev*dev + (1-alpha)*a.vari[worker]
}

// ChunkFor implements WorkerChunker.
func (a *AdaptiveChunk) ChunkFor(worker, remaining, workers int, _ float64) int {
	a.mu.Lock()
	mean, ok := a.mean[worker]
	vari := a.vari[worker]
	a.mu.Unlock()
	if !ok || mean <= 0 || a.Target <= 0 {
		return clampChunk(1, remaining) // probe first
	}
	safety := a.Safety
	if safety == 0 {
		safety = 1
	}
	if safety < 0 {
		safety = 0
	}
	est := mean + safety*math.Sqrt(vari)
	maxK := a.MaxK
	if maxK <= 0 {
		maxK = 64
	}
	k := int(a.Target.Seconds() / est)
	if k > maxK {
		k = maxK
	}
	// Tail guard: never take more than half of an even share of what
	// remains, so the last batches stay fine-grained (cf. Guided).
	if workers > 0 {
		if tail := (remaining + 2*workers - 1) / (2 * workers); k > tail {
			k = tail
		}
	}
	return clampChunk(k, remaining)
}

// Chunk implements ChunkPolicy for callers without worker identity: the
// conservative single-task probe.
func (a *AdaptiveChunk) Chunk(remaining, _ int, _ float64) int {
	return clampChunk(1, remaining)
}

// String implements ChunkPolicy.
func (a *AdaptiveChunk) String() string {
	return fmt.Sprintf("adaptive(%v)", a.Target)
}
