// Package sched provides task-dispatch policies for the skeleton layer:
// chunk-size policies for demand-driven farms (how many tasks a worker
// receives per request) and static partitioners for the non-adaptive
// baselines the experiments compare against.
//
// The paper names "the correct adjustment of algorithmic parameters (for
// example, blocking of communications, granularity)" as a key challenge;
// chunk policies are the granularity lever, and E10 ablates them.
package sched

import (
	"fmt"
	"math"
)

// ChunkPolicy decides how many tasks to hand a requesting worker, given how
// many tasks remain unassigned and the requesting worker's dispatch weight
// (a share in (0,1]; uniform weights are 1/P).
type ChunkPolicy interface {
	// Chunk returns the number of tasks to dispatch, at least 1 when
	// remaining > 0 and 0 when remaining == 0.
	Chunk(remaining, workers int, weight float64) int
	// String names the policy for reports.
	String() string
}

// clampChunk bounds a computed chunk into [1, remaining] (or 0 when empty).
func clampChunk(chunk, remaining int) int {
	if remaining <= 0 {
		return 0
	}
	if chunk < 1 {
		return 1
	}
	if chunk > remaining {
		return remaining
	}
	return chunk
}

// FixedChunk always hands out K tasks (the classic blocking factor).
type FixedChunk struct{ K int }

// Chunk implements ChunkPolicy.
func (f FixedChunk) Chunk(remaining, _ int, _ float64) int {
	return clampChunk(f.K, remaining)
}

// String implements ChunkPolicy.
func (f FixedChunk) String() string { return fmt.Sprintf("fixed(%d)", f.K) }

// Guided implements guided self-scheduling: chunk = ceil(remaining/(F·P)).
// Early requests get big chunks (low dispatch overhead), late requests get
// small ones (balance the tail). F defaults to 1.
type Guided struct{ F float64 }

// Chunk implements ChunkPolicy.
func (g Guided) Chunk(remaining, workers int, _ float64) int {
	f := g.F
	if f <= 0 {
		f = 1
	}
	if workers < 1 {
		workers = 1
	}
	chunk := int(math.Ceil(float64(remaining) / (f * float64(workers))))
	return clampChunk(chunk, remaining)
}

// String implements ChunkPolicy.
func (g Guided) String() string { return fmt.Sprintf("guided(%.3g)", g.F) }

// Weighted scales a guided chunk by the worker's calibrated dispatch
// weight, so fit nodes receive proportionally more work per request:
// chunk = ceil(remaining · weight / F).
type Weighted struct{ F float64 }

// Chunk implements ChunkPolicy.
func (w Weighted) Chunk(remaining, workers int, weight float64) int {
	f := w.F
	if f <= 0 {
		f = 2
	}
	if weight <= 0 {
		if workers < 1 {
			workers = 1
		}
		weight = 1 / float64(workers)
	}
	chunk := int(math.Ceil(float64(remaining) * weight / f))
	return clampChunk(chunk, remaining)
}

// String implements ChunkPolicy.
func (w Weighted) String() string { return fmt.Sprintf("weighted(%.3g)", w.F) }

// Single hands out one task per request: maximal balance, maximal dispatch
// traffic. It is the paper's task farm in its purest demand-driven form.
type Single struct{}

// Chunk implements ChunkPolicy.
func (Single) Chunk(remaining, _ int, _ float64) int { return clampChunk(1, remaining) }

// String implements ChunkPolicy.
func (Single) String() string { return "single" }

// Factoring implements factoring self-scheduling: work is handed out in
// rounds; in each round every worker gets an equal chunk of half the
// remaining work (chunk = ceil(remaining / (2P)) held for P requests).
type Factoring struct {
	roundChunk int
	served     int
}

// NewFactoring returns a fresh factoring policy (it is stateful; use one
// per farm run).
func NewFactoring() *Factoring { return &Factoring{} }

// Chunk implements ChunkPolicy.
func (fa *Factoring) Chunk(remaining, workers int, _ float64) int {
	if workers < 1 {
		workers = 1
	}
	if fa.served%workers == 0 {
		fa.roundChunk = int(math.Ceil(float64(remaining) / float64(2*workers)))
	}
	fa.served++
	return clampChunk(fa.roundChunk, remaining)
}

// String implements ChunkPolicy.
func (fa *Factoring) String() string { return "factoring" }

// Partition assigns task indices 0..n-1 to workers statically (the
// non-adaptive baseline). Each inner slice holds the task indices of one
// worker.
type Partition [][]int

// RoundRobin deals tasks to workers cyclically.
func RoundRobin(n, workers int) Partition {
	if workers < 1 {
		workers = 1
	}
	p := make(Partition, workers)
	for i := 0; i < n; i++ {
		w := i % workers
		p[w] = append(p[w], i)
	}
	return p
}

// Blocks splits tasks into contiguous near-equal blocks.
func Blocks(n, workers int) Partition {
	if workers < 1 {
		workers = 1
	}
	p := make(Partition, workers)
	base := n / workers
	extra := n % workers
	idx := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < extra {
			size++
		}
		for k := 0; k < size; k++ {
			p[w] = append(p[w], idx)
			idx++
		}
	}
	return p
}

// WeightedBlocks splits tasks into contiguous blocks proportional to the
// workers' weights (e.g. calibrated speeds). Weights must be non-negative;
// all-zero weights degrade to equal blocks. Every task is assigned.
func WeightedBlocks(n int, weights []float64) Partition {
	workers := len(weights)
	if workers == 0 {
		return RoundRobin(n, 1)
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return Blocks(n, workers)
	}
	p := make(Partition, workers)
	idx := 0
	var acc float64
	for w := 0; w < workers; w++ {
		share := 0.0
		if weights[w] > 0 {
			share = weights[w] / total
		}
		acc += share * float64(n)
		end := int(math.Round(acc))
		if w == workers-1 {
			end = n
		}
		for idx < end && idx < n {
			p[w] = append(p[w], idx)
			idx++
		}
	}
	return p
}

// Sizes returns the number of tasks per worker.
func (p Partition) Sizes() []int {
	out := make([]int, len(p))
	for i, tasks := range p {
		out[i] = len(tasks)
	}
	return out
}

// Total returns the number of assigned tasks.
func (p Partition) Total() int {
	var n int
	for _, tasks := range p {
		n += len(tasks)
	}
	return n
}
