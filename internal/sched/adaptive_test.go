package sched

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAdaptiveChunkProbesUntilObserved(t *testing.T) {
	a := NewAdaptiveChunk(time.Second)
	if got := a.ChunkFor(0, 100, 4, 0.25); got != 1 {
		t.Errorf("unobserved worker chunk = %d, want 1 (probe)", got)
	}
	if got := a.Chunk(100, 4, 0.25); got != 1 {
		t.Errorf("worker-blind chunk = %d, want 1", got)
	}
}

func TestAdaptiveChunkSizesToTarget(t *testing.T) {
	a := NewAdaptiveChunk(time.Second)
	a.ObserveTime(0, 100*time.Millisecond) // fast: 10 tasks fill a second
	a.ObserveTime(1, 500*time.Millisecond) // slow: 2 tasks fill a second
	if got := a.ChunkFor(0, 100, 2, 0.5); got != 10 {
		t.Errorf("fast worker chunk = %d, want 10", got)
	}
	if got := a.ChunkFor(1, 100, 2, 0.5); got != 2 {
		t.Errorf("slow worker chunk = %d, want 2", got)
	}
}

func TestAdaptiveChunkShrinksUnderDegradation(t *testing.T) {
	a := NewAdaptiveChunk(time.Second)
	a.Alpha = 0.5
	a.ObserveTime(0, 100*time.Millisecond)
	before := a.ChunkFor(0, 1000, 1, 1)
	// The node comes under pressure: task times quadruple.
	for i := 0; i < 8; i++ {
		a.ObserveTime(0, 400*time.Millisecond)
	}
	after := a.ChunkFor(0, 1000, 1, 1)
	if after >= before {
		t.Errorf("chunk should shrink under pressure: before %d, after %d", before, after)
	}
}

func TestAdaptiveChunkRespectsCap(t *testing.T) {
	a := NewAdaptiveChunk(time.Hour)
	a.MaxK = 8
	a.ObserveTime(0, time.Millisecond)
	if got := a.ChunkFor(0, 1000, 1, 1); got != 8 {
		t.Errorf("chunk = %d, want cap 8", got)
	}
}

func TestAdaptiveChunkIgnoresNonPositiveObservations(t *testing.T) {
	a := NewAdaptiveChunk(time.Second)
	a.ObserveTime(0, 0)
	a.ObserveTime(0, -time.Second)
	if got := a.ChunkFor(0, 10, 1, 1); got != 1 {
		t.Errorf("chunk = %d, want probing 1", got)
	}
}

func TestAdaptiveChunkString(t *testing.T) {
	if s := NewAdaptiveChunk(2 * time.Second).String(); s != "adaptive(2s)" {
		t.Errorf("String = %q", s)
	}
}

// TestAdaptiveChunkBoundsProperty: the chunk is always within [1,
// remaining] for remaining > 0 and 0 when empty, for arbitrary
// observations.
func TestAdaptiveChunkBoundsProperty(t *testing.T) {
	f := func(obsMillis []uint16, remaining uint16) bool {
		a := NewAdaptiveChunk(time.Second)
		for i, m := range obsMillis {
			a.ObserveTime(i%4, time.Duration(m)*time.Millisecond)
		}
		rem := int(remaining) % 500
		for w := 0; w < 4; w++ {
			got := a.ChunkFor(w, rem, 4, 0.25)
			if rem == 0 && got != 0 {
				return false
			}
			if rem > 0 && (got < 1 || got > rem) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
