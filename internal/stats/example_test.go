package stats_test

import (
	"fmt"

	"grasp/internal/stats"
)

// ExampleLinregress fits the univariate model Algorithm 1's statistical
// calibration uses: probe time as a function of observed processor load.
func ExampleLinregress() {
	loads := []float64{0.0, 0.2, 0.4, 0.6}
	times := []float64{1.0, 1.5, 2.0, 2.5} // time = 1 + 2.5·load
	fit, err := stats.Linregress(loads, times)
	if err != nil {
		panic(err)
	}
	fmt.Printf("time = %.2f + %.2f·load (R²=%.2f)\n", fit.Intercept, fit.Slope, fit.R2)
	// Output:
	// time = 1.00 + 2.50·load (R²=1.00)
}

// ExampleTrendWindow forecasts one step ahead from a sliding linear fit —
// the proactive monitor's predictor.
func ExampleTrendWindow() {
	f := stats.NewTrendWindow(3)
	for _, load := range []float64{0.1, 0.2, 0.3} {
		f.Observe(load)
	}
	fmt.Printf("next: %.1f\n", f.Predict())
	// Output:
	// next: 0.4
}
