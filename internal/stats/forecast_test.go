package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestLastValue(t *testing.T) {
	f := NewLastValue()
	if !math.IsNaN(f.Predict()) {
		t.Error("empty LastValue should predict NaN")
	}
	f.Observe(3)
	f.Observe(7)
	if got := f.Predict(); got != 7 {
		t.Errorf("Predict = %v, want 7", got)
	}
	f.Reset()
	if !math.IsNaN(f.Predict()) {
		t.Error("after Reset should predict NaN")
	}
}

func TestRunningMean(t *testing.T) {
	f := NewRunningMean()
	if !math.IsNaN(f.Predict()) {
		t.Error("empty RunningMean should predict NaN")
	}
	for _, x := range []float64{1, 2, 3, 4} {
		f.Observe(x)
	}
	if got := f.Predict(); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Predict = %v, want 2.5", got)
	}
}

func TestEWMAConverges(t *testing.T) {
	f := NewEWMA(0.5)
	for i := 0; i < 100; i++ {
		f.Observe(10)
	}
	if got := f.Predict(); !almostEq(got, 10, 1e-9) {
		t.Errorf("EWMA on constant = %v, want 10", got)
	}
}

func TestEWMATracksStep(t *testing.T) {
	f := NewEWMA(0.5)
	f.Observe(0)
	f.Observe(10) // s = 5
	if got := f.Predict(); !almostEq(got, 5, 1e-12) {
		t.Errorf("EWMA after step = %v, want 5", got)
	}
}

func TestEWMAClamping(t *testing.T) {
	if f := NewEWMA(-1); f.Alpha <= 0 {
		t.Errorf("alpha not clamped: %v", f.Alpha)
	}
	if f := NewEWMA(5); f.Alpha != 1 {
		t.Errorf("alpha not clamped to 1: %v", f.Alpha)
	}
}

func TestTrendWindowExtrapolates(t *testing.T) {
	f := NewTrendWindow(5)
	for i := 0; i < 5; i++ {
		f.Observe(float64(2 * i)) // 0,2,4,6,8
	}
	if got := f.Predict(); !almostEq(got, 10, 1e-9) {
		t.Errorf("TrendWindow predict = %v, want 10", got)
	}
}

func TestTrendWindowFewSamples(t *testing.T) {
	f := NewTrendWindow(5)
	if !math.IsNaN(f.Predict()) {
		t.Error("empty trend should predict NaN")
	}
	f.Observe(4)
	if got := f.Predict(); got != 4 {
		t.Errorf("single-sample trend = %v, want 4", got)
	}
}

func TestTrendWindowSlides(t *testing.T) {
	f := NewTrendWindow(3)
	// Old decreasing data is pushed out by an increasing tail.
	for _, x := range []float64{100, 90, 80, 1, 2, 3} {
		f.Observe(x)
	}
	if got := f.Predict(); !almostEq(got, 4, 1e-9) {
		t.Errorf("sliding trend = %v, want 4", got)
	}
}

func TestForecastersOnNoisyConstant(t *testing.T) {
	// All forecasters should land near the true mean of a noisy constant
	// signal; EWMA and mean should beat persistence on average error.
	rng := rand.New(rand.NewSource(11))
	signal := make([]float64, 400)
	for i := range signal {
		signal[i] = 5 + rng.NormFloat64()
	}
	type named struct {
		name string
		f    Forecaster
	}
	fs := []named{
		{"last", NewLastValue()},
		{"mean", NewRunningMean()},
		{"ewma", NewEWMA(0.1)},
		{"trend", NewTrendWindow(20)},
	}
	errs := make(map[string]float64)
	for _, nf := range fs {
		var sum float64
		n := 0
		for _, x := range signal {
			p := nf.f.Predict()
			if !math.IsNaN(p) {
				sum += math.Abs(p - x)
				n++
			}
			nf.f.Observe(x)
		}
		errs[nf.name] = sum / float64(n)
	}
	if errs["mean"] >= errs["last"] {
		t.Errorf("running mean (%v) should beat persistence (%v) on noisy constant", errs["mean"], errs["last"])
	}
	if errs["ewma"] >= errs["last"] {
		t.Errorf("EWMA (%v) should beat persistence (%v) on noisy constant", errs["ewma"], errs["last"])
	}
}

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Len() != 0 || w.Full() {
		t.Fatal("new window should be empty")
	}
	w.Push(1)
	w.Push(2)
	if w.Full() {
		t.Error("not yet full")
	}
	w.Push(3)
	if !w.Full() || w.Len() != 3 {
		t.Error("should be full at capacity")
	}
	w.Push(4) // evicts 1
	vals := w.Values()
	want := []float64{2, 3, 4}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values = %v, want %v", vals, want)
		}
	}
	if got := w.Mean(); !almostEq(got, 3, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if w.Min() != 2 || w.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWindowCapacityClamp(t *testing.T) {
	w := NewWindow(0)
	w.Push(1)
	w.Push(2)
	if w.Len() != 1 || w.Values()[0] != 2 {
		t.Errorf("capacity-1 window misbehaved: %v", w.Values())
	}
}

func TestWindowValuesOrder(t *testing.T) {
	w := NewWindow(4)
	for i := 1; i <= 10; i++ {
		w.Push(float64(i))
	}
	vals := w.Values()
	want := []float64{7, 8, 9, 10}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values = %v, want %v", vals, want)
		}
	}
}
