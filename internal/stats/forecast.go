package stats

import "math"

// Forecaster predicts the next value of a scalar time series from the values
// observed so far. GRASP's monitoring layer uses forecasters in the style of
// the Network Weather Service to smooth noisy load and bandwidth sensors
// before the calibration's statistical adjustment.
type Forecaster interface {
	// Observe records the next sample of the series.
	Observe(x float64)
	// Predict returns the forecast for the next (unseen) sample.
	// It returns NaN before any observation.
	Predict() float64
	// Reset discards all state.
	Reset()
}

// LastValue forecasts the most recent observation (persistence model).
type LastValue struct {
	last float64
	seen bool
}

// NewLastValue returns a persistence forecaster.
func NewLastValue() *LastValue { return &LastValue{} }

// Observe implements Forecaster.
func (f *LastValue) Observe(x float64) { f.last, f.seen = x, true }

// Predict implements Forecaster.
func (f *LastValue) Predict() float64 {
	if !f.seen {
		return math.NaN()
	}
	return f.last
}

// Reset implements Forecaster.
func (f *LastValue) Reset() { *f = LastValue{} }

// RunningMean forecasts the mean of all observations so far.
type RunningMean struct {
	sum float64
	n   int
}

// NewRunningMean returns a running-mean forecaster.
func NewRunningMean() *RunningMean { return &RunningMean{} }

// Observe implements Forecaster.
func (f *RunningMean) Observe(x float64) { f.sum += x; f.n++ }

// Predict implements Forecaster.
func (f *RunningMean) Predict() float64 {
	if f.n == 0 {
		return math.NaN()
	}
	return f.sum / float64(f.n)
}

// Reset implements Forecaster.
func (f *RunningMean) Reset() { *f = RunningMean{} }

// EWMA forecasts with an exponentially weighted moving average
// s ← α·x + (1−α)·s. Alpha in (0,1]; larger tracks faster.
type EWMA struct {
	Alpha float64
	s     float64
	seen  bool
}

// NewEWMA returns an EWMA forecaster with the given smoothing factor.
// Alpha outside (0,1] is clamped into it.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{Alpha: alpha}
}

// Observe implements Forecaster.
func (f *EWMA) Observe(x float64) {
	if !f.seen {
		f.s, f.seen = x, true
		return
	}
	f.s = f.Alpha*x + (1-f.Alpha)*f.s
}

// Predict implements Forecaster.
func (f *EWMA) Predict() float64 {
	if !f.seen {
		return math.NaN()
	}
	return f.s
}

// Reset implements Forecaster.
func (f *EWMA) Reset() { f.s, f.seen = 0, false }

// TrendWindow forecasts by fitting a least-squares line to the last W
// observations and extrapolating one step ahead. With fewer than two
// observations it falls back to persistence.
type TrendWindow struct {
	W   int
	buf []float64
	t   int // index of the next observation
}

// NewTrendWindow returns a linear-trend forecaster over a window of w
// samples (minimum 2).
func NewTrendWindow(w int) *TrendWindow {
	if w < 2 {
		w = 2
	}
	return &TrendWindow{W: w}
}

// Observe implements Forecaster.
func (f *TrendWindow) Observe(x float64) {
	f.buf = append(f.buf, x)
	if len(f.buf) > f.W {
		f.buf = f.buf[1:]
	}
	f.t++
}

// Predict implements Forecaster.
func (f *TrendWindow) Predict() float64 {
	n := len(f.buf)
	switch n {
	case 0:
		return math.NaN()
	case 1:
		return f.buf[0]
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	fit, err := Linregress(xs, f.buf)
	if err != nil {
		return f.buf[n-1]
	}
	return fit.Predict(float64(n))
}

// Reset implements Forecaster.
func (f *TrendWindow) Reset() { f.buf, f.t = nil, 0 }

// Window is a fixed-capacity sliding window of float64 samples with O(1)
// descriptive queries used by the monitoring layer.
type Window struct {
	cap  int
	buf  []float64
	next int
	full bool
}

// NewWindow returns a sliding window holding the most recent n samples
// (minimum 1).
func NewWindow(n int) *Window {
	if n < 1 {
		n = 1
	}
	return &Window{cap: n, buf: make([]float64, 0, n)}
}

// Push appends a sample, evicting the oldest when full.
func (w *Window) Push(x float64) {
	if len(w.buf) < w.cap {
		w.buf = append(w.buf, x)
		if len(w.buf) == w.cap {
			w.full = true
		}
		return
	}
	w.buf[w.next] = x
	w.next = (w.next + 1) % w.cap
}

// Len returns the number of samples currently held.
func (w *Window) Len() int { return len(w.buf) }

// Full reports whether the window has reached capacity at least once.
func (w *Window) Full() bool { return w.full }

// Values returns the samples in insertion order (oldest first).
func (w *Window) Values() []float64 {
	if len(w.buf) < w.cap {
		return append([]float64(nil), w.buf...)
	}
	out := make([]float64, 0, w.cap)
	out = append(out, w.buf[w.next:]...)
	out = append(out, w.buf[:w.next]...)
	return out
}

// Mean returns the mean of the window contents (NaN when empty).
func (w *Window) Mean() float64 { return Mean(w.buf) }

// Min returns the minimum of the window contents (NaN when empty).
func (w *Window) Min() float64 { return Min(w.buf) }

// Max returns the maximum of the window contents (NaN when empty).
func (w *Window) Max() float64 { return Max(w.buf) }
