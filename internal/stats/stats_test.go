package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{[]float64{2.5, 2.5, 2.5, 2.5}, 2.5},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMeanEmptyNaN(t *testing.T) {
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %v, want NaN", got)
	}
}

func TestVariance(t *testing.T) {
	// Known sample: variance of {2,4,4,4,5,5,7,9} with n-1 is 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got, want := Variance(xs), 32.0/7.0; !almostEq(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
	if !math.IsNaN(Variance(nil)) {
		t.Error("Variance of empty sample should be NaN")
	}
}

func TestStdDevConstantSeries(t *testing.T) {
	if got := StdDev([]float64{3, 3, 3, 3}); got != 0 {
		t.Errorf("StdDev of constant series = %v, want 0", got)
	}
}

func TestCoefVar(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := CoefVar(xs); got != 0 {
		t.Errorf("CoefVar constant = %v, want 0", got)
	}
	if !math.IsNaN(CoefVar([]float64{-1, 1})) { // mean zero
		t.Error("CoefVar with zero mean should be NaN")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if got := Sum(xs); got != 11 {
		t.Errorf("Sum = %v", got)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
	if Sum(nil) != 0 {
		t.Error("Sum of empty should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolated.
	if got := Percentile([]float64{1, 2}, 50); !almostEq(got, 1.5, 1e-12) {
		t.Errorf("Percentile interp = %v, want 1.5", got)
	}
}

func TestPercentileEdge(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	if !math.IsNaN(Percentile([]float64{1}, -1)) || !math.IsNaN(Percentile([]float64{1}, 101)) {
		t.Error("out-of-range percentile should be NaN")
	}
	if got := Percentile([]float64{42}, 99); got != 42 {
		t.Errorf("single sample percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("even median = %v", got)
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10} // perfectly linear
	if got := Correlation(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Correlation = %v, want 1", got)
	}
	ysNeg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, ysNeg); !almostEq(got, -1, 1e-12) {
		t.Errorf("Correlation = %v, want -1", got)
	}
	if got := Covariance(xs, ys); !almostEq(got, 5, 1e-12) {
		t.Errorf("Covariance = %v, want 5", got)
	}
}

func TestCorrelationDegenerate(t *testing.T) {
	if !math.IsNaN(Correlation([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Error("constant x correlation should be NaN")
	}
	if !math.IsNaN(Covariance([]float64{1, 2}, []float64{1})) {
		t.Error("mismatched lengths should be NaN")
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks ties = %v, want %v", got, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25} // monotone, nonlinear
	if got := SpearmanRank(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Spearman = %v, want 1", got)
	}
}

// Property: mean is bounded by min and max.
func TestPropMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: variance is non-negative.
func TestPropVarianceNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 2 {
			return true
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: shifting a sample by a constant leaves variance unchanged and
// shifts the mean by the constant.
func TestPropShiftInvariance(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		xs := sanitize(raw)
		if len(xs) < 2 || math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		return almostEq(Variance(xs), Variance(shifted), 1e-6*(1+math.Abs(Variance(xs)))) &&
			almostEq(Mean(xs)+shift, Mean(shifted), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestPropPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
			}
			prev = v
		}
	}
}

// sanitize clamps quick-generated floats to finite moderate values.
func sanitize(raw []float64) []float64 {
	var out []float64
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if x > 1e6 {
			x = 1e6
		}
		if x < -1e6 {
			x = -1e6
		}
		out = append(out, x)
	}
	return out
}
