package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a regression design matrix is singular or
// ill-conditioned (e.g. a predictor is constant or predictors are collinear).
var ErrSingular = errors.New("stats: singular design matrix")

// LinearFit is the result of a univariate ordinary-least-squares fit
// y ≈ Intercept + Slope·x.
type LinearFit struct {
	Intercept float64
	Slope     float64
	R2        float64 // coefficient of determination on the training data
	N         int     // number of observations used
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// Linregress fits y ≈ a + b·x by ordinary least squares.
// It returns ErrSingular when x has zero variance.
func Linregress(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return LinearFit{}, fmt.Errorf("stats: need at least 2 observations, have %d", len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return LinearFit{}, ErrSingular
	}
	b := sxy / sxx
	a := my - b*mx
	fit := LinearFit{Intercept: a, Slope: b, N: len(x)}
	fit.R2 = rSquared(y, func(i int) float64 { return fit.Predict(x[i]) })
	return fit, nil
}

// MultiFit is the result of a multivariate OLS fit
// y ≈ Coef[0] + Coef[1]·x1 + … + Coef[k]·xk.
type MultiFit struct {
	Coef []float64 // Coef[0] is the intercept
	R2   float64
	N    int
}

// Predict evaluates the fitted hyperplane at the predictor vector x
// (len(x) must equal len(Coef)-1).
func (f MultiFit) Predict(x []float64) float64 {
	y := f.Coef[0]
	for i, v := range x {
		y += f.Coef[i+1] * v
	}
	return y
}

// MultiRegress fits y ≈ β0 + Σ βj·X[i][j] by OLS via the normal equations,
// solved with Gaussian elimination with partial pivoting. X is row-major:
// one row per observation. It returns ErrSingular for collinear or constant
// predictors.
//
// The paper's multivariate calibration regresses execution time on processor
// load and bandwidth utilisation; k is therefore small (≤ 3), for which the
// normal equations are numerically adequate.
func MultiRegress(x [][]float64, y []float64) (MultiFit, error) {
	n := len(x)
	if n != len(y) {
		return MultiFit{}, fmt.Errorf("stats: mismatched lengths %d vs %d", n, len(y))
	}
	if n == 0 {
		return MultiFit{}, errors.New("stats: no observations")
	}
	k := len(x[0])
	for i, row := range x {
		if len(row) != k {
			return MultiFit{}, fmt.Errorf("stats: ragged design matrix at row %d", i)
		}
	}
	if n < k+1 {
		return MultiFit{}, fmt.Errorf("stats: need at least %d observations for %d predictors, have %d", k+1, k, n)
	}

	// Build the (k+1)×(k+1) normal-equation system AᵀA β = Aᵀy where A has a
	// leading column of ones.
	dim := k + 1
	ata := make([][]float64, dim)
	for i := range ata {
		ata[i] = make([]float64, dim)
	}
	aty := make([]float64, dim)
	at := func(row int, col int) float64 {
		if col == 0 {
			return 1
		}
		return x[row][col-1]
	}
	for r := 0; r < n; r++ {
		for i := 0; i < dim; i++ {
			vi := at(r, i)
			aty[i] += vi * y[r]
			for j := i; j < dim; j++ {
				ata[i][j] += vi * at(r, j)
			}
		}
	}
	for i := 1; i < dim; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}

	coef, err := SolveLinear(ata, aty)
	if err != nil {
		return MultiFit{}, err
	}
	fit := MultiFit{Coef: coef, N: n}
	fit.R2 = rSquared(y, func(i int) float64 { return fit.Predict(x[i]) })
	return fit, nil
}

// SolveLinear solves the square system a·x = b by Gaussian elimination with
// partial pivoting. a and b are not modified. It returns ErrSingular when a
// pivot underflows.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("stats: bad system dimensions %d×? vs %d", n, len(b))
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("stats: non-square matrix row %d", i)
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	v := append([]float64(nil), b...)

	const eps = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in this column.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < eps {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		v[col], v[pivot] = v[pivot], v[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			v[r] -= f * v[col]
		}
	}
	xs := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := v[r]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * xs[c]
		}
		xs[r] = s / m[r][r]
	}
	return xs, nil
}

// rSquared computes the coefficient of determination of predictions pred(i)
// against observations y. A constant y yields 1 if predictions are exact,
// else 0.
func rSquared(y []float64, pred func(i int) float64) float64 {
	my := Mean(y)
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - pred(i)
		ssRes += d * d
		t := y[i] - my
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
