// Package stats provides the statistical machinery GRASP's calibration and
// monitoring layers rely on: descriptive statistics, percentiles,
// covariance/correlation, ordinary-least-squares regression (univariate and
// multivariate), and simple time-series forecasters (EWMA, linear trend).
//
// Algorithm 1 of the paper ranks nodes either "based on the execution times
// only" or "on statistical functions, such as univariate and multivariate
// linear regression involving execution time, processor load, and bandwidth
// utilisation"; this package implements those statistical functions.
//
// All functions are pure and deterministic. NaN is returned (never panics)
// for degenerate inputs such as empty samples, so callers can propagate
// "unknown" naturally.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns NaN for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoefVar returns the coefficient of variation (stddev/mean) of xs.
// It returns NaN if the mean is zero or the sample is degenerate.
func CoefVar(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 || math.IsNaN(m) {
		return math.NaN()
	}
	return StdDev(xs) / m
}

// Min returns the smallest element of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs (zero for an empty slice).
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty sample or
// out-of-range p. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Covariance returns the unbiased sample covariance of paired samples xs, ys.
// It returns NaN if the lengths differ or fewer than two pairs are given.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)-1)
}

// Correlation returns the Pearson correlation coefficient of xs and ys,
// or NaN when undefined (mismatched lengths, degenerate variance).
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return Covariance(xs, ys) / (sx * sy)
}

// SpearmanRank returns Spearman's rank correlation of xs and ys: the Pearson
// correlation of their rank vectors, with ties assigned average ranks. The
// calibration experiments use it to compare a node ranking against ground
// truth.
func SpearmanRank(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Correlation(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based fractional ranks of xs (average rank for ties).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average 1-based rank across the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
