package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinregressExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	fit, err := Linregress(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Intercept, 1, 1e-9) || !almostEq(fit.Slope, 2, 1e-9) {
		t.Errorf("fit = %+v, want intercept 1 slope 2", fit)
	}
	if !almostEq(fit.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if got := fit.Predict(10); !almostEq(got, 21, 1e-9) {
		t.Errorf("Predict(10) = %v, want 21", got)
	}
}

func TestLinregressNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 10
		y[i] = 3 - 0.5*x[i] + rng.NormFloat64()*0.1
	}
	fit, err := Linregress(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Intercept-3) > 0.05 || math.Abs(fit.Slope+0.5) > 0.02 {
		t.Errorf("noisy fit = %+v, want approx intercept 3 slope -0.5", fit)
	}
	if fit.R2 < 0.9 {
		t.Errorf("R2 = %v, want > 0.9", fit.R2)
	}
}

func TestLinregressErrors(t *testing.T) {
	if _, err := Linregress([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for n<2")
	}
	if _, err := Linregress([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := Linregress([]float64{5, 5, 5}, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("constant x: got %v, want ErrSingular", err)
	}
}

func TestMultiRegressExactPlane(t *testing.T) {
	// y = 2 + 3·x1 − 1·x2
	x := [][]float64{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 2}, {3, 5},
	}
	y := make([]float64, len(x))
	for i, row := range x {
		y[i] = 2 + 3*row[0] - row[1]
	}
	fit, err := MultiRegress(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i, w := range want {
		if !almostEq(fit.Coef[i], w, 1e-9) {
			t.Errorf("Coef[%d] = %v, want %v", i, fit.Coef[i], w)
		}
	}
	if !almostEq(fit.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if got := fit.Predict([]float64{2, 3}); !almostEq(got, 5, 1e-9) {
		t.Errorf("Predict = %v, want 5", got)
	}
}

func TestMultiRegressNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 1000
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		x[i] = []float64{a, b, c}
		y[i] = 1 + 2*a - 3*b + 0.5*c + rng.NormFloat64()*0.05
	}
	fit, err := MultiRegress(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, -3, 0.5}
	for i, w := range want {
		if math.Abs(fit.Coef[i]-w) > 0.05 {
			t.Errorf("Coef[%d] = %v, want approx %v", i, fit.Coef[i], w)
		}
	}
}

func TestMultiRegressErrors(t *testing.T) {
	if _, err := MultiRegress(nil, nil); err == nil {
		t.Error("want error for empty system")
	}
	if _, err := MultiRegress([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := MultiRegress([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("want error for ragged matrix")
	}
	// Collinear predictors: x2 = 2·x1.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	y := []float64{1, 2, 3, 4}
	if _, err := MultiRegress(x, y); !errors.Is(err, ErrSingular) {
		t.Errorf("collinear: got %v, want ErrSingular", err)
	}
	// Too few observations.
	if _, err := MultiRegress([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("want error for n < k+1")
	}
}

func TestSolveLinearKnown(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	b := []float64{3, 5}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 5, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Errorf("x = %v, want [5 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := SolveLinear(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("got %v, want ErrSingular", err)
	}
}

func TestSolveLinearDoesNotMutate(t *testing.T) {
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{3, 5}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 0 || a[0][1] != 1 || b[0] != 3 {
		t.Errorf("inputs mutated: a=%v b=%v", a, b)
	}
}

// Property: solving A·x = b then multiplying back recovers b.
func TestPropSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 1 + r.Intn(5)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.NormFloat64()
			}
			a[i][i] += float64(n) * 2 // diagonally dominant → nonsingular
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a[i][j] * x[j]
			}
			if math.Abs(s-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: univariate regression is invariant to observation order.
func TestPropLinregressOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 100
			y[i] = rng.Float64() * 100
		}
		f1, err1 := Linregress(x, y)
		// Reverse.
		xr := make([]float64, n)
		yr := make([]float64, n)
		for i := range x {
			xr[n-1-i], yr[n-1-i] = x[i], y[i]
		}
		f2, err2 := Linregress(xr, yr)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch: %v vs %v", err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !almostEq(f1.Slope, f2.Slope, 1e-9) || !almostEq(f1.Intercept, f2.Intercept, 1e-9) {
			t.Fatalf("order-dependent fit: %+v vs %+v", f1, f2)
		}
	}
}

// Property: R² of the OLS fit is within [0, 1] on its own training data
// (guaranteed because OLS minimises SSE and includes an intercept).
func TestPropR2Range(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		fit, err := Linregress(x, y)
		if err != nil {
			continue
		}
		if fit.R2 < -1e-9 || fit.R2 > 1+1e-9 {
			t.Fatalf("R2 out of range: %v", fit.R2)
		}
	}
}
