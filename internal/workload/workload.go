// Package workload generates the synthetic task populations the experiments
// run and provides real compute kernels for the local-runtime examples.
//
// Task costs are drawn from seeded distributions (uniform, normal,
// heavy-tailed Pareto, bimodal), letting experiments control the
// computation/communication ratio and cost variance the paper identifies as
// the levers of skeleton performance.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a distribution over non-negative float64 values.
type Dist interface {
	// Sample draws one value using the given source.
	Sample(rng *rand.Rand) float64
	// Mean returns the distribution's expected value.
	Mean() float64
	// String describes the distribution.
	String() string
}

// Fixed is a degenerate distribution.
type Fixed struct{ V float64 }

// Sample implements Dist.
func (f Fixed) Sample(*rand.Rand) float64 { return f.V }

// Mean implements Dist.
func (f Fixed) Mean() float64 { return f.V }

// String implements Dist.
func (f Fixed) String() string { return fmt.Sprintf("fixed(%g)", f.V) }

// Uniform is uniform on [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// String implements Dist.
func (u Uniform) String() string { return fmt.Sprintf("uniform(%g,%g)", u.Lo, u.Hi) }

// Normal is Gaussian with the given mean and standard deviation, truncated
// below at Floor (default 0).
type Normal struct {
	Mu, Sigma float64
	Floor     float64
}

// Sample implements Dist.
func (n Normal) Sample(rng *rand.Rand) float64 {
	v := n.Mu + rng.NormFloat64()*n.Sigma
	if v < n.Floor {
		v = n.Floor
	}
	return v
}

// Mean implements Dist. The truncation bias is ignored; callers keep
// Sigma ≪ Mu.
func (n Normal) Mean() float64 { return n.Mu }

// String implements Dist.
func (n Normal) String() string { return fmt.Sprintf("normal(%g,%g)", n.Mu, n.Sigma) }

// Pareto is a heavy-tailed distribution with scale Xm and shape Alpha
// (> 1 for a finite mean). It models the occasional huge task that makes
// static schedules stumble.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Dist.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	a := p.Alpha
	if a <= 0 {
		a = 1.5
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return p.Xm / math.Pow(u, 1/a)
}

// Mean implements Dist. Infinite for Alpha ≤ 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// String implements Dist.
func (p Pareto) String() string { return fmt.Sprintf("pareto(%g,%g)", p.Xm, p.Alpha) }

// Bimodal mixes two fixed magnitudes: with probability PHeavy the value is
// Heavy, otherwise Light. It models a workload of cheap tasks with
// occasional expensive ones.
type Bimodal struct {
	Light, Heavy float64
	PHeavy       float64
}

// Sample implements Dist.
func (b Bimodal) Sample(rng *rand.Rand) float64 {
	if rng.Float64() < b.PHeavy {
		return b.Heavy
	}
	return b.Light
}

// Mean implements Dist.
func (b Bimodal) Mean() float64 { return b.Light*(1-b.PHeavy) + b.Heavy*b.PHeavy }

// String implements Dist.
func (b Bimodal) String() string {
	return fmt.Sprintf("bimodal(%g,%g,p=%g)", b.Light, b.Heavy, b.PHeavy)
}

// Generate draws n samples deterministically from the seed.
func Generate(d Dist, seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// Spec describes a task population for the simulated platforms: per-task
// compute cost (operations) and payload sizes (bytes).
type Spec struct {
	N        int
	Cost     Dist
	InBytes  Dist
	OutBytes Dist
	Seed     int64
}

// Item is one generated task's parameters.
type Item struct {
	Cost     float64
	InBytes  float64
	OutBytes float64
}

// Build materialises the population. Nil size distributions mean zero bytes.
func (s Spec) Build() []Item {
	rng := rand.New(rand.NewSource(s.Seed))
	items := make([]Item, s.N)
	for i := range items {
		items[i].Cost = s.Cost.Sample(rng)
		if s.InBytes != nil {
			items[i].InBytes = s.InBytes.Sample(rng)
		}
		if s.OutBytes != nil {
			items[i].OutBytes = s.OutBytes.Sample(rng)
		}
	}
	return items
}

// TotalCost sums the cost of all items.
func TotalCost(items []Item) float64 {
	var sum float64
	for _, it := range items {
		sum += it.Cost
	}
	return sum
}
