package workload_test

import (
	"fmt"

	"grasp/internal/workload"
)

// ExampleGenerate draws a reproducible heavy-tailed cost population — the
// irregular workloads that stress granularity policies (E10, E16).
func ExampleGenerate() {
	costs := workload.Generate(workload.Pareto{Xm: 1, Alpha: 2}, 7, 5)
	for i, c := range costs {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("%.2f", c)
	}
	fmt.Println()
	again := workload.Generate(workload.Pareto{Xm: 1, Alpha: 2}, 7, 5)
	fmt.Println("deterministic:", costs[0] == again[0])
	// Output:
	// 1.04 2.08 2.04 1.05 1.20
	// deterministic: true
}

// ExampleBimodal shows the mixed light/heavy distribution: mostly cheap
// tasks with occasional expensive stragglers.
func ExampleBimodal() {
	d := workload.Bimodal{Light: 1, Heavy: 20, PHeavy: 0.1}
	fmt.Printf("mean=%.1f %s\n", d.Mean(), d)
	// Output:
	// mean=2.9 bimodal(1,20,p=0.1)
}
