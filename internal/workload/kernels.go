package workload

import "math"

// Real compute kernels used by the examples on the local (goroutine)
// runtime, where tasks burn actual CPU instead of virtual time.

// MandelbrotRow computes one row of a Mandelbrot-set escape-time image over
// the region [-2.5, 1] × [-1, 1]. It returns the iteration counts for each
// of width pixels. Rows near the set's interior cost far more than rows in
// the exterior, giving the farm a naturally irregular workload.
func MandelbrotRow(row, width, height, maxIter int) []uint16 {
	out := make([]uint16, width)
	if width <= 0 || height <= 0 {
		return out
	}
	ci := -1.0 + 2.0*float64(row)/float64(height)
	for x := 0; x < width; x++ {
		cr := -2.5 + 3.5*float64(x)/float64(width)
		var zr, zi float64
		var it int
		for it = 0; it < maxIter; it++ {
			zr2, zi2 := zr*zr, zi*zi
			if zr2+zi2 > 4 {
				break
			}
			zr, zi = zr2-zi2+cr, 2*zr*zi+ci
		}
		out[x] = uint16(it)
	}
	return out
}

// Convolve1D applies a dense kernel to a signal with zero padding,
// returning a slice of len(signal). It is the workhorse stage of the image
// pipeline example.
func Convolve1D(signal, kernel []float64) []float64 {
	out := make([]float64, len(signal))
	if len(kernel) == 0 {
		copy(out, signal)
		return out
	}
	half := len(kernel) / 2
	for i := range signal {
		var acc float64
		for k, w := range kernel {
			j := i + k - half
			if j >= 0 && j < len(signal) {
				acc += signal[j] * w
			}
		}
		out[i] = acc
	}
	return out
}

// GaussianKernel returns a normalised 1-D Gaussian kernel of the given
// radius and sigma (2·radius+1 taps).
func GaussianKernel(radius int, sigma float64) []float64 {
	if radius < 0 {
		radius = 0
	}
	if sigma <= 0 {
		sigma = 1
	}
	k := make([]float64, 2*radius+1)
	var sum float64
	for i := range k {
		d := float64(i - radius)
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// Integrate numerically integrates f over [a, b] with n trapezoids — the
// CPU-burning kernel of the parameter-sweep example.
func Integrate(f func(float64) float64, a, b float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	h := (b - a) / float64(n)
	sum := (f(a) + f(b)) / 2
	for i := 1; i < n; i++ {
		sum += f(a + float64(i)*h)
	}
	return sum * h
}

// Spin burns approximately the given number of floating-point operations
// and returns a value that depends on all of them, preventing the work from
// being optimised away. It calibrates local-runtime task costs.
func Spin(ops int) float64 {
	acc := 1.0001
	for i := 0; i < ops; i++ {
		acc = acc*1.0000001 + 1e-9
		if acc > 2 {
			acc -= 1
		}
	}
	return acc
}
