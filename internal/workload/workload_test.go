package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixed(t *testing.T) {
	d := Fixed{V: 7}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5; i++ {
		if d.Sample(rng) != 7 {
			t.Fatal("fixed not fixed")
		}
	}
	if d.Mean() != 7 {
		t.Error("mean wrong")
	}
}

func TestUniformRangeAndMean(t *testing.T) {
	d := Uniform{Lo: 10, Hi: 20}
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 10 || v > 20 {
			t.Fatalf("out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-15) > 0.2 {
		t.Errorf("sample mean = %v", mean)
	}
	if d.Mean() != 15 {
		t.Error("analytic mean wrong")
	}
}

func TestUniformDegenerate(t *testing.T) {
	d := Uniform{Lo: 5, Hi: 5}
	if d.Sample(rand.New(rand.NewSource(1))) != 5 {
		t.Error("degenerate uniform should return Lo")
	}
}

func TestNormalTruncation(t *testing.T) {
	d := Normal{Mu: 1, Sigma: 10, Floor: 0}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if d.Sample(rng) < 0 {
			t.Fatal("normal escaped floor")
		}
	}
}

func TestNormalMean(t *testing.T) {
	d := Normal{Mu: 100, Sigma: 5}
	rng := rand.New(rand.NewSource(4))
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	if mean := sum / n; math.Abs(mean-100) > 0.5 {
		t.Errorf("sample mean = %v", mean)
	}
}

func TestParetoTail(t *testing.T) {
	d := Pareto{Xm: 1, Alpha: 1.5}
	rng := rand.New(rand.NewSource(5))
	var over10 int
	const n = 20000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 1 {
			t.Fatalf("below scale: %v", v)
		}
		if v > 10 {
			over10++
		}
	}
	// P(X>10) = 10^-1.5 ≈ 0.0316.
	frac := float64(over10) / n
	if frac < 0.02 || frac > 0.05 {
		t.Errorf("tail fraction = %v, want ≈0.032", frac)
	}
}

func TestParetoMean(t *testing.T) {
	if m := (Pareto{Xm: 2, Alpha: 3}).Mean(); m != 3 {
		t.Errorf("mean = %v, want 3", m)
	}
	if !math.IsInf((Pareto{Xm: 1, Alpha: 1}).Mean(), 1) {
		t.Error("alpha<=1 mean should be +Inf")
	}
}

func TestParetoBadAlphaDefaults(t *testing.T) {
	d := Pareto{Xm: 1, Alpha: 0}
	rng := rand.New(rand.NewSource(1))
	v := d.Sample(rng)
	if v < 1 || math.IsInf(v, 1) || math.IsNaN(v) {
		t.Errorf("sample with defaulted alpha = %v", v)
	}
}

func TestBimodal(t *testing.T) {
	d := Bimodal{Light: 1, Heavy: 100, PHeavy: 0.1}
	rng := rand.New(rand.NewSource(6))
	var heavies int
	const n = 10000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v != 1 && v != 100 {
			t.Fatalf("unexpected value %v", v)
		}
		if v == 100 {
			heavies++
		}
	}
	frac := float64(heavies) / n
	if frac < 0.08 || frac > 0.12 {
		t.Errorf("heavy fraction = %v", frac)
	}
	if math.Abs(d.Mean()-10.9) > 1e-9 {
		t.Errorf("mean = %v, want 10.9", d.Mean())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Uniform{1, 2}, 42, 100)
	b := Generate(Uniform{1, 2}, 42, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	c := Generate(Uniform{1, 2}, 43, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds identical")
	}
}

func TestSpecBuild(t *testing.T) {
	s := Spec{
		N:        50,
		Cost:     Fixed{V: 10},
		InBytes:  Fixed{V: 100},
		OutBytes: Fixed{V: 20},
		Seed:     1,
	}
	items := s.Build()
	if len(items) != 50 {
		t.Fatalf("len = %d", len(items))
	}
	for _, it := range items {
		if it.Cost != 10 || it.InBytes != 100 || it.OutBytes != 20 {
			t.Fatalf("item = %+v", it)
		}
	}
	if TotalCost(items) != 500 {
		t.Errorf("TotalCost = %v", TotalCost(items))
	}
}

func TestSpecNilSizes(t *testing.T) {
	items := Spec{N: 3, Cost: Fixed{V: 1}, Seed: 1}.Build()
	for _, it := range items {
		if it.InBytes != 0 || it.OutBytes != 0 {
			t.Fatal("nil size dists should be zero")
		}
	}
}

func TestPropDistsNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dists := []Dist{
			Fixed{V: 5},
			Uniform{Lo: 0, Hi: 10},
			Normal{Mu: 5, Sigma: 2},
			Pareto{Xm: 1, Alpha: 2},
			Bimodal{Light: 1, Heavy: 50, PHeavy: 0.2},
		}
		for _, d := range dists {
			for i := 0; i < 50; i++ {
				v := d.Sample(rng)
				if v < 0 || math.IsNaN(v) {
					return false
				}
			}
			if d.String() == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMandelbrotRow(t *testing.T) {
	row := MandelbrotRow(50, 100, 100, 64)
	if len(row) != 100 {
		t.Fatalf("len = %d", len(row))
	}
	// The row through the middle contains interior points (maxIter) and
	// exterior points (small counts).
	var hasMax, hasSmall bool
	for _, v := range row {
		if v == 64 {
			hasMax = true
		}
		if v < 5 {
			hasSmall = true
		}
	}
	if !hasMax || !hasSmall {
		t.Errorf("expected interior and exterior pixels: max=%v small=%v", hasMax, hasSmall)
	}
}

func TestMandelbrotRowDegenerate(t *testing.T) {
	if len(MandelbrotRow(0, 0, 10, 8)) != 0 {
		t.Error("zero width should be empty")
	}
}

func TestMandelbrotCostVariance(t *testing.T) {
	// Interior rows must cost more iterations than edge rows — the source of
	// farm irregularity.
	sumIter := func(row []uint16) (s int) {
		for _, v := range row {
			s += int(v)
		}
		return
	}
	mid := sumIter(MandelbrotRow(50, 64, 100, 256))
	edge := sumIter(MandelbrotRow(1, 64, 100, 256))
	if mid <= edge*2 {
		t.Errorf("mid row (%d) should cost far more than edge row (%d)", mid, edge)
	}
}

func TestConvolve1DIdentity(t *testing.T) {
	sig := []float64{1, 2, 3, 4}
	out := Convolve1D(sig, []float64{1})
	for i := range sig {
		if out[i] != sig[i] {
			t.Fatalf("identity kernel changed signal: %v", out)
		}
	}
}

func TestConvolve1DEmptyKernel(t *testing.T) {
	sig := []float64{1, 2}
	out := Convolve1D(sig, nil)
	if out[0] != 1 || out[1] != 2 {
		t.Error("empty kernel should copy")
	}
}

func TestConvolve1DBoxBlur(t *testing.T) {
	sig := []float64{0, 0, 3, 0, 0}
	out := Convolve1D(sig, []float64{1.0 / 3, 1.0 / 3, 1.0 / 3})
	// The impulse spreads to neighbours.
	if math.Abs(out[1]-1) > 1e-9 || math.Abs(out[2]-1) > 1e-9 || math.Abs(out[3]-1) > 1e-9 {
		t.Errorf("box blur = %v", out)
	}
	if out[0] != 0 {
		t.Errorf("zero padding violated: %v", out[0])
	}
}

func TestGaussianKernel(t *testing.T) {
	k := GaussianKernel(3, 1.5)
	if len(k) != 7 {
		t.Fatalf("len = %d", len(k))
	}
	var sum float64
	for _, v := range k {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("kernel sum = %v, want 1", sum)
	}
	if k[3] <= k[0] {
		t.Error("kernel should peak at centre")
	}
	// Symmetry.
	for i := 0; i < 3; i++ {
		if math.Abs(k[i]-k[6-i]) > 1e-12 {
			t.Error("kernel asymmetric")
		}
	}
}

func TestGaussianKernelDegenerate(t *testing.T) {
	if len(GaussianKernel(-1, 0)) != 1 {
		t.Error("negative radius should clamp to single tap")
	}
}

func TestIntegrate(t *testing.T) {
	// ∫₀¹ x² dx = 1/3.
	got := Integrate(func(x float64) float64 { return x * x }, 0, 1, 10000)
	if math.Abs(got-1.0/3) > 1e-6 {
		t.Errorf("integral = %v", got)
	}
	// ∫₀^π sin = 2.
	got = Integrate(math.Sin, 0, math.Pi, 10000)
	if math.Abs(got-2) > 1e-6 {
		t.Errorf("integral = %v", got)
	}
}

func TestIntegrateDegenerate(t *testing.T) {
	got := Integrate(func(x float64) float64 { return 1 }, 0, 1, 0)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("n clamped integral = %v", got)
	}
}

func TestSpin(t *testing.T) {
	v := Spin(1000)
	if math.IsNaN(v) || v <= 0 {
		t.Errorf("Spin = %v", v)
	}
	if Spin(0) != 1.0001 {
		t.Error("zero ops should return seed value")
	}
}
