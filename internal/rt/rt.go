// Package rt abstracts the execution substrate for skeleton code. The same
// farm and pipeline implementations run on either a real concurrent runtime
// (goroutines, wall-clock time) or the deterministic grid simulator
// (vsim processes, virtual time).
//
// This mirrors the paper's central portability claim for structured
// parallelism — "providing a clear and consistent meaning across platforms
// while their associated structure depends on the particular implementation"
// — and is what lets the experiment harness measure the identical skeleton
// logic the examples expose to library users.
package rt

import "time"

// Ctx is the execution context handed to every process. All blocking
// operations are methods on the context of the calling process.
type Ctx interface {
	// Name returns the process name.
	Name() string
	// Now returns the time elapsed since the runtime started.
	Now() time.Duration
	// Sleep suspends the calling process for d.
	Sleep(d time.Duration)
	// Go spawns a child process and returns a handle to join on.
	Go(name string, fn func(Ctx)) Handle
	// Join blocks until the process behind h has finished.
	Join(h Handle)
}

// Handle identifies a spawned process for Join.
type Handle interface{ handle() }

// Chan is a channel of untyped values with Go semantics, usable from any
// process of the runtime that created it.
type Chan interface {
	// Send delivers v, blocking until accepted. Panics if closed.
	Send(c Ctx, v any)
	// TrySend delivers v without blocking, reporting acceptance.
	TrySend(c Ctx, v any) bool
	// Recv returns the next value; ok is false when closed and drained.
	Recv(c Ctx) (v any, ok bool)
	// TryRecv is a non-blocking Recv; done reports whether the operation
	// completed (either a value or closed-and-drained).
	TryRecv(c Ctx) (v any, ok, done bool)
	// Close marks the channel closed.
	Close(c Ctx)
	// Len returns the number of buffered values.
	Len() int
	// Cap returns the buffer capacity.
	Cap() int
}

// Runtime creates processes and channels and drives them to completion.
type Runtime interface {
	// Go spawns a root process.
	Go(name string, fn func(Ctx)) Handle
	// NewChan creates a channel with the given buffer capacity.
	NewChan(name string, capacity int) Chan
	// Run drives the runtime until all processes have finished. For the
	// simulated runtime it can return a deadlock error.
	Run() error
	// Now returns the time elapsed since the runtime started.
	Now() time.Duration
}
