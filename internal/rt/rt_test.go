package rt

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"grasp/internal/vsim"
)

// runtimes under test, constructed fresh per case.
func eachRuntime(t *testing.T, fn func(t *testing.T, name string, r Runtime)) {
	t.Helper()
	t.Run("sim", func(t *testing.T) {
		fn(t, "sim", NewSim(vsim.New()))
	})
	t.Run("local", func(t *testing.T) {
		fn(t, "local", NewLocal())
	})
}

func TestProducerConsumerBothRuntimes(t *testing.T) {
	eachRuntime(t, func(t *testing.T, name string, r Runtime) {
		ch := r.NewChan("pc", 4)
		var got atomic.Int64
		r.Go("producer", func(c Ctx) {
			for i := 1; i <= 10; i++ {
				ch.Send(c, i)
			}
			ch.Close(c)
		})
		r.Go("consumer", func(c Ctx) {
			for {
				v, ok := ch.Recv(c)
				if !ok {
					return
				}
				got.Add(int64(v.(int)))
			}
		})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		if got.Load() != 55 {
			t.Errorf("sum = %d, want 55", got.Load())
		}
	})
}

func TestGoJoinBothRuntimes(t *testing.T) {
	eachRuntime(t, func(t *testing.T, name string, r Runtime) {
		var order []string
		r.Go("main", func(c Ctx) {
			h := c.Go("child", func(c2 Ctx) {
				c2.Sleep(10 * time.Millisecond)
				order = append(order, "child")
			})
			c.Join(h)
			order = append(order, "main")
		})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(order) != "[child main]" {
			t.Errorf("order = %v", order)
		}
	})
}

func TestNowAdvancesBothRuntimes(t *testing.T) {
	eachRuntime(t, func(t *testing.T, name string, r Runtime) {
		var before, after time.Duration
		r.Go("p", func(c Ctx) {
			before = c.Now()
			c.Sleep(20 * time.Millisecond)
			after = c.Now()
		})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		if after-before < 20*time.Millisecond {
			t.Errorf("Sleep advanced %v, want ≥ 20ms", after-before)
		}
	})
}

func TestTrySendTryRecvBothRuntimes(t *testing.T) {
	eachRuntime(t, func(t *testing.T, name string, r Runtime) {
		ch := r.NewChan("try", 1)
		r.Go("p", func(c Ctx) {
			if _, _, done := ch.TryRecv(c); done {
				t.Error("TryRecv on empty should not complete")
			}
			if !ch.TrySend(c, 1) {
				t.Error("TrySend into empty buffer should succeed")
			}
			if ch.TrySend(c, 2) {
				t.Error("TrySend into full buffer should fail")
			}
			v, ok, done := ch.TryRecv(c)
			if !done || !ok || v.(int) != 1 {
				t.Errorf("TryRecv = %v %v %v", v, ok, done)
			}
		})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestChanLenCapBothRuntimes(t *testing.T) {
	eachRuntime(t, func(t *testing.T, name string, r Runtime) {
		ch := r.NewChan("lc", 3)
		if ch.Cap() != 3 {
			t.Errorf("Cap = %d", ch.Cap())
		}
		r.Go("p", func(c Ctx) {
			ch.Send(c, 1)
			ch.Send(c, 2)
			if ch.Len() != 2 {
				t.Errorf("Len = %d", ch.Len())
			}
		})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRecvAfterCloseBothRuntimes(t *testing.T) {
	eachRuntime(t, func(t *testing.T, name string, r Runtime) {
		ch := r.NewChan("cl", 2)
		var tail []bool
		r.Go("p", func(c Ctx) {
			ch.Send(c, 1)
			ch.Close(c)
			_, ok1 := ch.Recv(c)
			_, ok2 := ch.Recv(c)
			tail = []bool{ok1, ok2}
		})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(tail) != "[true false]" {
			t.Errorf("tail = %v", tail)
		}
	})
}

func TestSimDeterministicAcrossRuns(t *testing.T) {
	run := func() []string {
		r := NewSim(vsim.New())
		ch := r.NewChan("ch", 0)
		var log []string
		for i := 0; i < 3; i++ {
			idx := i
			r.Go(fmt.Sprintf("w%d", i), func(c Ctx) {
				c.Sleep(time.Duration(idx) * time.Millisecond)
				ch.Send(c, idx)
			})
		}
		r.Go("collect", func(c Ctx) {
			for i := 0; i < 3; i++ {
				v, _ := ch.Recv(c)
				log = append(log, fmt.Sprintf("%v@%v", v, c.Now()))
			}
		})
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	if fmt.Sprint(run()) != fmt.Sprint(run()) {
		t.Error("sim runtime not deterministic")
	}
}

func TestSimVirtualTimeIsFast(t *testing.T) {
	// An hour of virtual time must simulate in well under a second of real
	// time — this is the point of the simulated runtime.
	r := NewSim(vsim.New())
	r.Go("sleeper", func(c Ctx) {
		for i := 0; i < 3600; i++ {
			c.Sleep(time.Second)
		}
	})
	wallStart := time.Now()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(wallStart); wall > 2*time.Second {
		t.Errorf("simulating 1h took %v of real time", wall)
	}
	if r.Now() != time.Hour {
		t.Errorf("virtual now = %v, want 1h", r.Now())
	}
}

func TestProcOf(t *testing.T) {
	env := vsim.New()
	r := NewSim(env)
	r.Go("p", func(c Ctx) {
		if ProcOf(c) == nil {
			t.Error("ProcOf returned nil")
		}
		if ProcOf(c).Name() != "p" {
			t.Errorf("proc name = %q", ProcOf(c).Name())
		}
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcOfPanicsOnLocalCtx(t *testing.T) {
	r := NewLocal()
	panicked := make(chan bool, 1)
	r.Go("p", func(c Ctx) {
		defer func() { panicked <- recover() != nil }()
		ProcOf(c)
	})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !<-panicked {
		t.Error("ProcOf on local ctx should panic")
	}
}

func TestMixedHandleJoinPanics(t *testing.T) {
	sim := NewSim(vsim.New())
	local := NewLocal()
	localH := local.Go("x", func(Ctx) {})
	if err := local.Run(); err != nil {
		t.Fatal(err)
	}
	panicked := false
	sim.Go("p", func(c Ctx) {
		defer func() { panicked = recover() != nil }()
		c.Join(localH)
	})
	_ = sim.Run()
	if !panicked {
		t.Error("cross-runtime join should panic")
	}
}

func TestSimEnvAccessor(t *testing.T) {
	env := vsim.New()
	if NewSim(env).Env() != env {
		t.Error("Env() should return the wrapped environment")
	}
}

func TestLocalChanNegativeCap(t *testing.T) {
	r := NewLocal()
	if r.NewChan("x", -3).Cap() != 0 {
		t.Error("negative capacity should clamp to 0")
	}
}

func TestLocalManyGoroutines(t *testing.T) {
	r := NewLocal()
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		r.Go(fmt.Sprintf("g%d", i), func(c Ctx) { n.Add(1) })
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Errorf("n = %d", n.Load())
	}
}
