package rt

import (
	"sync"
	"time"
)

// Local is the real runtime: processes are goroutines, time is wall-clock,
// and channels are native Go channels. It is what a library user gets when
// running skeletons on an actual machine (the examples use it).
type Local struct {
	start time.Time
	wg    sync.WaitGroup
}

// NewLocal returns a running local runtime; Now is measured from this call.
func NewLocal() *Local { return &Local{start: time.Now()} }

// localHandle adapts a goroutine's completion to Handle.
type localHandle struct{ done chan struct{} }

func (localHandle) handle() {}

// localCtx is the Ctx of a goroutine-backed process.
type localCtx struct {
	l    *Local
	name string
}

// Name implements Ctx.
func (c localCtx) Name() string { return c.name }

// Now implements Ctx.
func (c localCtx) Now() time.Duration { return time.Since(c.l.start) }

// Sleep implements Ctx.
func (c localCtx) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Go implements Ctx.
func (c localCtx) Go(name string, fn func(Ctx)) Handle { return c.l.Go(name, fn) }

// Join implements Ctx.
func (c localCtx) Join(h Handle) {
	lh, okCast := h.(localHandle)
	if !okCast {
		panic("rt: joining a non-local handle on the local runtime")
	}
	<-lh.done
}

// Go implements Runtime.
func (l *Local) Go(name string, fn func(Ctx)) Handle {
	h := localHandle{done: make(chan struct{})}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		defer close(h.done)
		fn(localCtx{l: l, name: name})
	}()
	return h
}

// NewChan implements Runtime.
func (l *Local) NewChan(_ string, capacity int) Chan {
	if capacity < 0 {
		capacity = 0
	}
	return &localChan{ch: make(chan any, capacity), capacity: capacity}
}

// Run implements Runtime: it blocks until every spawned goroutine finishes.
func (l *Local) Run() error {
	l.wg.Wait()
	return nil
}

// Now implements Runtime.
func (l *Local) Now() time.Duration { return time.Since(l.start) }

// localChan adapts a native channel to Chan.
type localChan struct {
	ch       chan any
	capacity int
}

// Send implements Chan.
func (lc *localChan) Send(_ Ctx, v any) { lc.ch <- v }

// TrySend implements Chan.
func (lc *localChan) TrySend(_ Ctx, v any) bool {
	select {
	case lc.ch <- v:
		return true
	default:
		return false
	}
}

// Recv implements Chan.
func (lc *localChan) Recv(_ Ctx) (any, bool) {
	v, ok := <-lc.ch
	return v, ok
}

// TryRecv implements Chan.
func (lc *localChan) TryRecv(_ Ctx) (any, bool, bool) {
	select {
	case v, ok := <-lc.ch:
		return v, ok, true
	default:
		return nil, false, false
	}
}

// Close implements Chan.
func (lc *localChan) Close(_ Ctx) { close(lc.ch) }

// Len implements Chan.
func (lc *localChan) Len() int { return len(lc.ch) }

// Cap implements Chan.
func (lc *localChan) Cap() int { return lc.capacity }
