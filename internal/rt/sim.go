package rt

import (
	"time"

	"grasp/internal/vsim"
)

// Sim is the simulated runtime: processes are vsim processes and time is
// virtual. It is deterministic and is what every experiment runs on.
type Sim struct {
	env *vsim.Env
}

// NewSim wraps a simulation environment as a Runtime.
func NewSim(env *vsim.Env) *Sim { return &Sim{env: env} }

// Env exposes the underlying simulation environment.
func (s *Sim) Env() *vsim.Env { return s.env }

// simHandle adapts a vsim.Proc to Handle.
type simHandle struct{ p *vsim.Proc }

func (simHandle) handle() {}

// simCtx is the Ctx of a simulated process.
type simCtx struct {
	s *Sim
	p *vsim.Proc
}

// Name implements Ctx.
func (c simCtx) Name() string { return c.p.Name() }

// Now implements Ctx.
func (c simCtx) Now() time.Duration { return c.s.env.Now() }

// Sleep implements Ctx.
func (c simCtx) Sleep(d time.Duration) { c.p.Sleep(d) }

// Go implements Ctx.
func (c simCtx) Go(name string, fn func(Ctx)) Handle { return c.s.Go(name, fn) }

// Join implements Ctx.
func (c simCtx) Join(h Handle) {
	sh, okCast := h.(simHandle)
	if !okCast {
		panic("rt: joining a non-simulated handle on the simulated runtime")
	}
	c.p.Join(sh.p)
}

// Go implements Runtime.
func (s *Sim) Go(name string, fn func(Ctx)) Handle {
	p := s.env.Go(name, func(p *vsim.Proc) {
		fn(simCtx{s: s, p: p})
	})
	return simHandle{p: p}
}

// NewChan implements Runtime.
func (s *Sim) NewChan(name string, capacity int) Chan {
	return &simChan{ch: vsim.NewChan[any](s.env, name, capacity)}
}

// Run implements Runtime.
func (s *Sim) Run() error { return s.env.Run() }

// Now implements Runtime.
func (s *Sim) Now() time.Duration { return s.env.Now() }

// simChan adapts vsim.Chan[any] to Chan.
type simChan struct {
	ch *vsim.Chan[any]
}

func proc(c Ctx) *vsim.Proc {
	sc, okCast := c.(simCtx)
	if !okCast {
		panic("rt: simulated channel used from a non-simulated context")
	}
	return sc.p
}

// Send implements Chan.
func (s *simChan) Send(c Ctx, v any) { s.ch.Send(proc(c), v) }

// TrySend implements Chan.
func (s *simChan) TrySend(c Ctx, v any) bool { return s.ch.TrySend(proc(c), v) }

// Recv implements Chan.
func (s *simChan) Recv(c Ctx) (any, bool) { return s.ch.Recv(proc(c)) }

// TryRecv implements Chan.
func (s *simChan) TryRecv(c Ctx) (any, bool, bool) { return s.ch.TryRecv(proc(c)) }

// Close implements Chan.
func (s *simChan) Close(c Ctx) { s.ch.Close(proc(c)) }

// Len implements Chan.
func (s *simChan) Len() int { return s.ch.Len() }

// Cap implements Chan.
func (s *simChan) Cap() int { return s.ch.Cap() }

// ProcOf returns the vsim process behind a simulated context. Grid-backed
// executors use it to block the calling skeleton process on simulated
// transfers and computation. It panics for non-simulated contexts.
func ProcOf(c Ctx) *vsim.Proc { return proc(c) }
