package calibrate

import (
	"fmt"

	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/trace"
)

// Options configures a calibration run.
type Options struct {
	Strategy Strategy
	// Probes are the sample tasks ("a sample of the data"); probe i%len is
	// executed on worker i. Must be non-empty.
	Probes []platform.Task
	// Workers optionally restricts calibration to a subset (default: all).
	Workers []int
	// Log receives calibrate events (may be nil).
	Log *trace.Log
}

// Outcome is the result of running Algorithm 1.
type Outcome struct {
	Ranking Ranking
	// Results are the completed probe executions: calibration work
	// contributes to the overall job, per the paper.
	Results []platform.Result
	// FailedWorkers are nodes whose probe was lost to a crash; they are
	// excluded from the ranking (a dead node cannot be Chosen).
	FailedWorkers []int
	// FailedProbes are the probe tasks lost on those nodes; callers that
	// count calibration work toward the job must re-execute them.
	FailedProbes []platform.Task
}

// Run executes Algorithm 1 on the platform from within process c: the probe
// tasks run over all workers concurrently, per-node times and resource
// readings are collected at the caller (the root node), and the ranking is
// computed with the configured strategy.
func Run(pf platform.Platform, c rt.Ctx, opts Options) (Outcome, error) {
	if len(opts.Probes) == 0 {
		return Outcome{}, fmt.Errorf("calibrate: no probe tasks")
	}
	workers := opts.Workers
	if len(workers) == 0 {
		workers = make([]int, pf.Size())
		for i := range workers {
			workers[i] = i
		}
	}
	for _, w := range workers {
		if w < 0 || w >= pf.Size() {
			return Outcome{}, fmt.Errorf("calibrate: worker %d out of range [0,%d)", w, pf.Size())
		}
	}

	if opts.Log != nil {
		opts.Log.Append(trace.Event{At: c.Now(), Kind: trace.KindPhaseStart, Msg: "calibration"})
	}

	type obs struct {
		sample Sample
		result platform.Result
	}
	results := pf.Runtime().NewChan("calibrate.results", len(workers))

	// "Execute F over P nodes concurrently": one prober per worker.
	for idx, w := range workers {
		w := w
		probe := opts.Probes[idx%len(opts.Probes)]
		c.Go(fmt.Sprintf("calibrate.%s", pf.WorkerName(w)), func(cc rt.Ctx) {
			loadS := pf.LoadSensor(w)
			bwS := pf.BandwidthSensor(w)
			// Read resource conditions bracketing the sample and average,
			// approximating "collect processor and bandwidth values".
			l0, b0 := loadS.Read(), bwS.Read()
			res := pf.Exec(cc, w, probe)
			l1, b1 := loadS.Read(), bwS.Read()
			results.Send(cc, obs{
				sample: Sample{
					Worker: w, Time: res.Time,
					Load: (l0 + l1) / 2, BW: (b0 + b1) / 2,
					ProbeCost: probe.Cost,
				},
				result: res,
			})
		})
	}

	// Root collects t from P nodes into T.
	out := Outcome{}
	samples := make([]Sample, 0, len(workers))
	for range workers {
		v, ok := results.Recv(c)
		if !ok {
			return Outcome{}, fmt.Errorf("calibrate: result channel closed early")
		}
		o := v.(obs)
		if o.result.Failed() {
			out.FailedWorkers = append(out.FailedWorkers, o.sample.Worker)
			out.FailedProbes = append(out.FailedProbes, o.result.Task)
			if opts.Log != nil {
				opts.Log.Append(trace.Event{
					At:   c.Now(),
					Kind: trace.KindNote,
					Node: pf.WorkerName(o.sample.Worker),
					Msg:  "calibration probe lost: node failed",
				})
			}
			continue
		}
		samples = append(samples, o.sample)
		out.Results = append(out.Results, o.result)
		if opts.Log != nil {
			opts.Log.Append(trace.Event{
				At:   c.Now(),
				Kind: trace.KindCalibrate,
				Node: pf.WorkerName(o.sample.Worker),
				Dur:  o.sample.Time,
			})
		}
	}
	// Stable order regardless of completion interleaving.
	sortSamplesByWorker(samples)

	out.Ranking = Rank(samples, opts.Strategy)
	if opts.Log != nil {
		opts.Log.Append(trace.Event{At: c.Now(), Kind: trace.KindPhaseEnd, Msg: "calibration"})
	}
	return out, nil
}

// sortSamplesByWorker orders samples by worker index (insertion sort; P is
// small).
func sortSamplesByWorker(samples []Sample) {
	for i := 1; i < len(samples); i++ {
		for j := i; j > 0 && samples[j-1].Worker > samples[j].Worker; j-- {
			samples[j-1], samples[j] = samples[j], samples[j-1]
		}
	}
}
