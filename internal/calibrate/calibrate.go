// Package calibrate implements Algorithm 1 of the paper: run a sample of
// the program's functions over every allocated node concurrently, collect
// the execution times at the root, optionally adjust them statistically
// using processor-load and bandwidth observations, rank the nodes by
// extrapolated performance, and select the fittest subset (the "Chosen"
// table).
//
// Ranking strategies mirror the paper's two modes — "execution times only"
// and "statistical functions, such as univariate and multivariate linear
// regression involving execution time, processor load, and bandwidth
// utilisation" — plus a physically motivated load-scaling ablation.
package calibrate

import (
	"fmt"
	"sort"
	"time"

	"grasp/internal/stats"
)

// Strategy selects how observed sample times are extrapolated into a
// fitness ranking.
type Strategy int

// Ranking strategies.
const (
	// TimeOnly ranks by raw measured time: "the faster a node the fitter
	// it is".
	TimeOnly Strategy = iota
	// Univariate regresses time on observed processor load across nodes
	// and ranks by the load-adjusted time (predicted time at the reference
	// load).
	Univariate
	// Multivariate regresses time on processor load and bandwidth
	// utilisation and ranks by the fully adjusted time.
	Multivariate
	// LoadScaled applies the physical correction t·(1−load): the time the
	// node would have needed had it been idle. Not in the paper; kept as an
	// ablation upper bound for the statistical strategies.
	LoadScaled
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case TimeOnly:
		return "time-only"
	case Univariate:
		return "univariate"
	case Multivariate:
		return "multivariate"
	case LoadScaled:
		return "load-scaled"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Sample is one node's calibration observation: the probe execution time
// plus the resource readings taken alongside it.
type Sample struct {
	Worker int
	Time   time.Duration
	Load   float64 // processor load observed during the sample
	BW     float64 // bandwidth utilisation observed during the sample
	// ProbeCost is the operation count of the probe this sample measured
	// (0 when unknown); callers use it to normalise times across probes of
	// different sizes.
	ProbeCost float64
}

// Ranking is the outcome of Algorithm 1's ranking step.
type Ranking struct {
	Strategy Strategy
	// Order lists workers fittest-first.
	Order []int
	// Score maps worker → adjusted predicted time in seconds; lower is
	// fitter.
	Score map[int]float64
	// Samples are the observations the ranking was computed from.
	Samples []Sample
	// R2 is the regression fit quality for statistical strategies
	// (0 when not applicable or when the regression fell back).
	R2 float64
	// FellBack reports that a statistical strategy degraded to TimeOnly
	// (too few samples or singular design matrix).
	FellBack bool
}

// Rank computes a fitness ranking from calibration samples. Statistical
// strategies need at least 3 (univariate) or 4 (multivariate) samples and
// non-degenerate predictors; otherwise they fall back to TimeOnly and set
// FellBack.
func Rank(samples []Sample, strat Strategy) Ranking {
	r := Ranking{
		Strategy: strat,
		Score:    make(map[int]float64, len(samples)),
		Samples:  append([]Sample(nil), samples...),
	}
	times := make([]float64, len(samples))
	loads := make([]float64, len(samples))
	bws := make([]float64, len(samples))
	for i, s := range samples {
		times[i] = s.Time.Seconds()
		loads[i] = s.Load
		bws[i] = s.BW
	}

	switch strat {
	case LoadScaled:
		for i, s := range samples {
			r.Score[s.Worker] = times[i] * (1 - clamp01(loads[i]))
		}
	case Univariate:
		fit, err := stats.Linregress(loads, times)
		if err != nil || len(samples) < 3 {
			r.FellBack = true
			rawScores(&r, samples, times)
			break
		}
		slope := fit.Slope
		if slope < 0 {
			// A negative load sensitivity is physically meaningless noise;
			// adjusting with it would reward loaded nodes.
			slope = 0
		}
		ref := stats.Mean(loads)
		for i, s := range samples {
			r.Score[s.Worker] = times[i] - slope*(loads[i]-ref)
		}
		r.R2 = fit.R2
	case Multivariate:
		x := make([][]float64, len(samples))
		for i := range samples {
			x[i] = []float64{loads[i], bws[i]}
		}
		fit, err := stats.MultiRegress(x, times)
		if err != nil || len(samples) < 4 {
			// Degrade gracefully: try univariate (bandwidth column is often
			// the degenerate one), then raw.
			uni := Rank(samples, Univariate)
			r.Score = uni.Score
			r.R2 = uni.R2
			r.FellBack = true
			break
		}
		bLoad, bBW := fit.Coef[1], fit.Coef[2]
		if bLoad < 0 {
			bLoad = 0
		}
		if bBW < 0 {
			bBW = 0
		}
		refL, refB := stats.Mean(loads), stats.Mean(bws)
		for i, s := range samples {
			r.Score[s.Worker] = times[i] - bLoad*(loads[i]-refL) - bBW*(bws[i]-refB)
		}
		r.R2 = fit.R2
	default: // TimeOnly
		rawScores(&r, samples, times)
	}

	r.Order = make([]int, 0, len(samples))
	for _, s := range samples {
		r.Order = append(r.Order, s.Worker)
	}
	sort.SliceStable(r.Order, func(a, b int) bool {
		sa, sb := r.Score[r.Order[a]], r.Score[r.Order[b]]
		if sa != sb {
			return sa < sb
		}
		return r.Order[a] < r.Order[b]
	})
	return r
}

// rawScores fills Score with the raw measured times.
func rawScores(r *Ranking, samples []Sample, times []float64) {
	for i, s := range samples {
		r.Score[s.Worker] = times[i]
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Select returns the k fittest workers (the Chosen table). k is clamped to
// [1, len(Order)]; an empty ranking returns nil.
func (r Ranking) Select(k int) []int {
	if len(r.Order) == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > len(r.Order) {
		k = len(r.Order)
	}
	return append([]int(nil), r.Order[:k]...)
}

// SelectBySpeedFraction returns the smallest fittest prefix whose aggregate
// predicted speed (Σ 1/score) reaches frac of the total across all workers.
// frac is clamped into (0, 1]; at least one worker is always selected.
func (r Ranking) SelectBySpeedFraction(frac float64) []int {
	if len(r.Order) == 0 {
		return nil
	}
	if frac <= 0 {
		frac = 0.01
	}
	if frac > 1 {
		frac = 1
	}
	var total float64
	for _, w := range r.Order {
		if s := r.Score[w]; s > 0 {
			total += 1 / s
		}
	}
	if total == 0 {
		return r.Select(1)
	}
	var acc float64
	for i, w := range r.Order {
		if s := r.Score[w]; s > 0 {
			acc += 1 / s
		}
		if acc >= frac*total {
			return append([]int(nil), r.Order[:i+1]...)
		}
	}
	return append([]int(nil), r.Order...)
}

// Weights converts scores into dispatch weights proportional to predicted
// speed (1/score), normalised to sum to 1 over the given workers. Workers
// without a score get weight 0; if nothing has a positive score, weights
// are uniform.
func (r Ranking) Weights(workers []int) map[int]float64 {
	w := make(map[int]float64, len(workers))
	var total float64
	for _, id := range workers {
		if s, ok := r.Score[id]; ok && s > 0 {
			w[id] = 1 / s
			total += 1 / s
		} else {
			w[id] = 0
		}
	}
	if total == 0 {
		for _, id := range workers {
			w[id] = 1 / float64(len(workers))
		}
		return w
	}
	for id := range w {
		w[id] /= total
	}
	return w
}
