package calibrate

import (
	"fmt"
	"testing"
	"time"

	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/trace"
	"grasp/internal/vsim"
)

func gridPF(t *testing.T, specs []grid.NodeSpec, noise float64) (*platform.GridPlatform, *rt.Sim) {
	t.Helper()
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: specs})
	if err != nil {
		t.Fatal(err)
	}
	return platform.NewGridPlatform(sim, g, noise, 7), sim
}

func TestRunRanksBySpeed(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 50}, {BaseSpeed: 200}, {BaseSpeed: 100},
	}, 0)
	var out Outcome
	var err error
	sim.Go("root", func(c rt.Ctx) {
		out, err = Run(pf, c, Options{
			Strategy: TimeOnly,
			Probes:   []platform.Task{{ID: -1, Cost: 100}},
		})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out.Ranking.Order) != "[1 2 0]" {
		t.Errorf("Order = %v", out.Ranking.Order)
	}
	if len(out.Results) != 3 {
		t.Errorf("calibration should return its probe results (job contribution), got %d", len(out.Results))
	}
}

func TestRunConcurrent(t *testing.T) {
	// P identical nodes, each probe takes 2s; a concurrent calibration
	// finishes at ~2s, not P×2s.
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 50}, {BaseSpeed: 50}, {BaseSpeed: 50}, {BaseSpeed: 50},
	}, 0)
	sim.Go("root", func(c rt.Ctx) {
		if _, err := Run(pf, c, Options{Strategy: TimeOnly, Probes: []platform.Task{{Cost: 100}}}); err != nil {
			t.Error(err)
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sim.Now() > 3*time.Second {
		t.Errorf("calibration took %v; not concurrent", sim.Now())
	}
}

func TestRunCollectsSensors(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 100, Load: loadgen.NewConstant(0.5)},
		{BaseSpeed: 100},
	}, 0)
	var out Outcome
	sim.Go("root", func(c rt.Ctx) {
		out, _ = Run(pf, c, Options{Strategy: TimeOnly, Probes: []platform.Task{{Cost: 10}}})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Ranking.Samples[0].Load != 0.5 {
		t.Errorf("sample 0 load = %v, want 0.5", out.Ranking.Samples[0].Load)
	}
	if out.Ranking.Samples[1].Load != 0 {
		t.Errorf("sample 1 load = %v, want 0", out.Ranking.Samples[1].Load)
	}
}

func TestRunWorkerSubset(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 10}, {BaseSpeed: 20}, {BaseSpeed: 30},
	}, 0)
	var out Outcome
	sim.Go("root", func(c rt.Ctx) {
		out, _ = Run(pf, c, Options{
			Strategy: TimeOnly,
			Probes:   []platform.Task{{Cost: 10}},
			Workers:  []int{0, 2},
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out.Ranking.Order) != "[2 0]" {
		t.Errorf("Order = %v", out.Ranking.Order)
	}
}

func TestRunValidation(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 1}}, 0)
	var errNoProbe, errBadWorker error
	sim.Go("root", func(c rt.Ctx) {
		_, errNoProbe = Run(pf, c, Options{Strategy: TimeOnly})
		_, errBadWorker = Run(pf, c, Options{
			Strategy: TimeOnly,
			Probes:   []platform.Task{{Cost: 1}},
			Workers:  []int{5},
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if errNoProbe == nil {
		t.Error("missing probes should error")
	}
	if errBadWorker == nil {
		t.Error("out-of-range worker should error")
	}
}

func TestRunEmitsTrace(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}, {BaseSpeed: 20}}, 0)
	log := trace.New()
	sim.Go("root", func(c rt.Ctx) {
		_, _ = Run(pf, c, Options{Strategy: TimeOnly, Probes: []platform.Task{{Cost: 1}}, Log: log})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	counts := log.CountByKind()
	if counts[trace.KindCalibrate] != 2 {
		t.Errorf("calibrate events = %d", counts[trace.KindCalibrate])
	}
	if counts[trace.KindPhaseStart] != 1 || counts[trace.KindPhaseEnd] != 1 {
		t.Errorf("phase events missing: %v", counts)
	}
	spans := log.Phases()
	if len(spans) != 1 || spans[0].Name != "calibration" || spans[0].End < 0 {
		t.Errorf("phase span = %v", spans)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() string {
		pf, sim := gridPF(t, grid.HeterogeneousSpecs(3, 8, 100, 0.6), 0.05)
		var out Outcome
		sim.Go("root", func(c rt.Ctx) {
			out, _ = Run(pf, c, Options{Strategy: Multivariate, Probes: []platform.Task{{Cost: 50}}})
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(out.Ranking.Order, out.Ranking.Score)
	}
	if run() != run() {
		t.Error("calibration not deterministic")
	}
}

func TestRunStatisticalOnGrid(t *testing.T) {
	// Node 0 is intrinsically fastest but heavily loaded during calibration;
	// statistical calibration should rank it above what raw times suggest.
	specs := []grid.NodeSpec{
		{BaseSpeed: 300, Load: loadgen.NewConstant(0.8)}, // eff 60 during calib
		{BaseSpeed: 100},
		{BaseSpeed: 110},
		{BaseSpeed: 90},
		{BaseSpeed: 80, Load: loadgen.NewConstant(0.2)},
	}
	rank := func(strat Strategy) []int {
		pf, sim := gridPF(t, specs, 0)
		var out Outcome
		sim.Go("root", func(c rt.Ctx) {
			out, _ = Run(pf, c, Options{Strategy: strat, Probes: []platform.Task{{Cost: 100}}})
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return out.Ranking.Order
	}
	raw := rank(TimeOnly)
	scaled := rank(LoadScaled)
	if raw[0] == 0 {
		t.Fatalf("premise broken: raw rank = %v", raw)
	}
	if scaled[0] != 0 {
		t.Errorf("load-scaled rank = %v, want node 0 first", scaled)
	}
}
