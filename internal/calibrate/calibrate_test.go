package calibrate

import (
	"fmt"
	"math"
	"testing"
	"time"
)

func mkSamples(times []float64, loads []float64, bws []float64) []Sample {
	s := make([]Sample, len(times))
	for i := range times {
		s[i] = Sample{Worker: i, Time: time.Duration(times[i] * float64(time.Second))}
		if loads != nil {
			s[i].Load = loads[i]
		}
		if bws != nil {
			s[i].BW = bws[i]
		}
	}
	return s
}

func TestTimeOnlyOrdering(t *testing.T) {
	samples := mkSamples([]float64{3, 1, 2}, nil, nil)
	r := Rank(samples, TimeOnly)
	if fmt.Sprint(r.Order) != "[1 2 0]" {
		t.Errorf("Order = %v", r.Order)
	}
	if r.Score[1] != 1 || r.Score[0] != 3 {
		t.Errorf("Score = %v", r.Score)
	}
	if r.FellBack {
		t.Error("TimeOnly cannot fall back")
	}
}

func TestTimeOnlyTieBreakDeterministic(t *testing.T) {
	samples := mkSamples([]float64{2, 2, 1}, nil, nil)
	r := Rank(samples, TimeOnly)
	if fmt.Sprint(r.Order) != "[2 0 1]" {
		t.Errorf("Order = %v (ties must break by worker index)", r.Order)
	}
}

func TestLoadScaled(t *testing.T) {
	// Worker 0: 4s at 75% load → intrinsic 1s. Worker 1: 2s idle → 2s.
	samples := mkSamples([]float64{4, 2}, []float64{0.75, 0}, nil)
	r := Rank(samples, LoadScaled)
	if fmt.Sprint(r.Order) != "[0 1]" {
		t.Errorf("Order = %v: load scaling should prefer the loaded-but-fast node", r.Order)
	}
	if math.Abs(r.Score[0]-1) > 1e-9 {
		t.Errorf("Score[0] = %v", r.Score[0])
	}
}

func TestUnivariateAdjustsForLoad(t *testing.T) {
	// Five nodes with identical intrinsic speed; time grows linearly with
	// load. Node 4 is heavily loaded during calibration.
	loads := []float64{0, 0.1, 0.2, 0.3, 0.8}
	times := make([]float64, 5)
	for i, l := range loads {
		times[i] = 1 + 2*l // perfectly linear
	}
	r := Rank(mkSamples(times, loads, nil), Univariate)
	if r.FellBack {
		t.Fatal("unexpected fallback")
	}
	// All adjusted scores should be nearly equal.
	var lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range r.Score {
		lo, hi = math.Min(lo, s), math.Max(hi, s)
	}
	if hi-lo > 1e-9 {
		t.Errorf("adjusted scores should be equal, spread = %v", hi-lo)
	}
	if r.R2 < 0.99 {
		t.Errorf("R2 = %v", r.R2)
	}
}

func TestUnivariateBeatsTimeOnlyUnderTransientLoad(t *testing.T) {
	// Intrinsically fastest node (worker 0, 1s idle time) is measured under
	// heavy transient load; the slow node (3s) is idle. TimeOnly misranks;
	// univariate should recover the right order.
	loads := []float64{0.8, 0.1, 0.2, 0.0, 0.3}
	intrinsic := []float64{1, 2, 2.2, 3, 2.5}
	times := make([]float64, len(loads))
	for i := range times {
		times[i] = intrinsic[i] + 4*loads[i]
	}
	samples := mkSamples(times, loads, nil)
	raw := Rank(samples, TimeOnly)
	uni := Rank(samples, Univariate)
	pos := func(order []int, w int) int {
		for i, v := range order {
			if v == w {
				return i
			}
		}
		return -1
	}
	rawPos, uniPos := pos(raw.Order, 0), pos(uni.Order, 0)
	if rawPos < 2 {
		t.Fatalf("test premise broken: raw ranking should misplace worker 0 (pos %d)", rawPos)
	}
	// Regression across nodes attenuates when intrinsic speed correlates
	// with sampled load, so full recovery is not guaranteed — but the
	// adjustment must move the misjudged node up.
	if uniPos >= rawPos {
		t.Errorf("univariate position %d, raw position %d: adjustment did not help", uniPos, rawPos)
	}
}

func TestUnivariateNegativeSlopeClamped(t *testing.T) {
	// Loads anti-correlated with time: slope would be negative; the
	// adjustment must not reward loaded nodes.
	loads := []float64{0.9, 0.5, 0.1}
	times := []float64{1, 2, 3}
	r := Rank(mkSamples(times, loads, nil), Univariate)
	// With slope clamped to 0, scores equal raw times.
	for i, want := range times {
		if math.Abs(r.Score[i]-want) > 1e-9 {
			t.Errorf("Score[%d] = %v, want %v", i, r.Score[i], want)
		}
	}
}

func TestUnivariateFallsBackFewSamples(t *testing.T) {
	r := Rank(mkSamples([]float64{1, 2}, []float64{0, 0.5}, nil), Univariate)
	if !r.FellBack {
		t.Error("2 samples should fall back")
	}
}

func TestUnivariateFallsBackConstantLoad(t *testing.T) {
	r := Rank(mkSamples([]float64{1, 2, 3}, []float64{0.5, 0.5, 0.5}, nil), Univariate)
	if !r.FellBack {
		t.Error("constant load (singular) should fall back")
	}
	// Fallback must still produce a usable ranking.
	if fmt.Sprint(r.Order) != "[0 1 2]" {
		t.Errorf("Order = %v", r.Order)
	}
}

func TestMultivariateAdjustsBothPredictors(t *testing.T) {
	// time = 1 + 2·load + 1·bw exactly; six observations.
	loads := []float64{0, 0.2, 0.4, 0.6, 0.1, 0.3}
	bws := []float64{0.5, 0.1, 0.3, 0, 0.4, 0.2}
	times := make([]float64, len(loads))
	for i := range times {
		times[i] = 1 + 2*loads[i] + bws[i]
	}
	r := Rank(mkSamples(times, loads, bws), Multivariate)
	if r.FellBack {
		t.Fatal("unexpected fallback")
	}
	var lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range r.Score {
		lo, hi = math.Min(lo, s), math.Max(hi, s)
	}
	if hi-lo > 1e-9 {
		t.Errorf("adjusted scores spread = %v, want 0", hi-lo)
	}
}

func TestMultivariateFallsBackToUnivariate(t *testing.T) {
	// Constant bandwidth column → singular multivariate; load is still
	// informative, so the univariate path should engage.
	loads := []float64{0, 0.2, 0.4, 0.6, 0.8}
	times := make([]float64, len(loads))
	for i := range times {
		times[i] = 1 + loads[i]
	}
	bws := []float64{0.3, 0.3, 0.3, 0.3, 0.3}
	r := Rank(mkSamples(times, loads, bws), Multivariate)
	if !r.FellBack {
		t.Fatal("expected fallback")
	}
	var lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range r.Score {
		lo, hi = math.Min(lo, s), math.Max(hi, s)
	}
	if hi-lo > 1e-9 {
		t.Errorf("fallback should still adjust for load; spread = %v", hi-lo)
	}
}

func TestSelect(t *testing.T) {
	r := Rank(mkSamples([]float64{3, 1, 2, 4}, nil, nil), TimeOnly)
	if fmt.Sprint(r.Select(2)) != "[1 2]" {
		t.Errorf("Select(2) = %v", r.Select(2))
	}
	if fmt.Sprint(r.Select(0)) != "[1]" {
		t.Errorf("Select(0) should clamp to 1: %v", r.Select(0))
	}
	if len(r.Select(99)) != 4 {
		t.Errorf("Select(99) should clamp to all: %v", r.Select(99))
	}
	if Rank(nil, TimeOnly).Select(3) != nil {
		t.Error("empty ranking should select nil")
	}
}

func TestSelectDoesNotAliasOrder(t *testing.T) {
	r := Rank(mkSamples([]float64{2, 1}, nil, nil), TimeOnly)
	sel := r.Select(2)
	sel[0] = 99
	if r.Order[0] == 99 {
		t.Error("Select aliases Order")
	}
}

func TestSelectBySpeedFraction(t *testing.T) {
	// Speeds 1/1, 1/2, 1/4, 1/8 → total 1.875. Fittest alone covers 53%.
	r := Rank(mkSamples([]float64{1, 2, 4, 8}, nil, nil), TimeOnly)
	if got := r.SelectBySpeedFraction(0.5); len(got) != 1 || got[0] != 0 {
		t.Errorf("frac 0.5 = %v", got)
	}
	if got := r.SelectBySpeedFraction(0.8); len(got) != 2 {
		t.Errorf("frac 0.8 = %v", got)
	}
	if got := r.SelectBySpeedFraction(1.0); len(got) != 4 {
		t.Errorf("frac 1.0 = %v", got)
	}
	if got := r.SelectBySpeedFraction(-1); len(got) != 1 {
		t.Errorf("clamped frac = %v", got)
	}
}

func TestWeights(t *testing.T) {
	r := Rank(mkSamples([]float64{1, 2, 4}, nil, nil), TimeOnly)
	w := r.Weights([]int{0, 1, 2})
	sum := w[0] + w[1] + w[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum = %v", sum)
	}
	if !(w[0] > w[1] && w[1] > w[2]) {
		t.Errorf("weights not ordered by speed: %v", w)
	}
	if math.Abs(w[0]/w[2]-4) > 1e-9 {
		t.Errorf("weight ratio = %v, want 4", w[0]/w[2])
	}
}

func TestWeightsDegenerate(t *testing.T) {
	r := Ranking{Score: map[int]float64{}}
	w := r.Weights([]int{0, 1})
	if math.Abs(w[0]-0.5) > 1e-9 || math.Abs(w[1]-0.5) > 1e-9 {
		t.Errorf("degenerate weights should be uniform: %v", w)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		TimeOnly: "time-only", Univariate: "univariate",
		Multivariate: "multivariate", LoadScaled: "load-scaled",
		Strategy(9): "strategy(9)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestRankDoesNotMutateInput(t *testing.T) {
	samples := mkSamples([]float64{3, 1}, nil, nil)
	Rank(samples, TimeOnly)
	if samples[0].Worker != 0 || samples[1].Worker != 1 {
		t.Error("Rank mutated input slice")
	}
}
