package calibrate_test

import (
	"fmt"
	"time"

	"grasp/internal/calibrate"
)

// ExampleRank ranks three nodes from calibration samples: the univariate
// strategy regresses time on observed load, so the heavily loaded node 2
// is forgiven its slow probe and ranked by its load-adjusted time.
func ExampleRank() {
	samples := []calibrate.Sample{
		{Worker: 0, Time: 1000 * time.Millisecond, Load: 0.0},
		{Worker: 1, Time: 1500 * time.Millisecond, Load: 0.1},
		{Worker: 2, Time: 4000 * time.Millisecond, Load: 0.8},
	}
	raw := calibrate.Rank(samples, calibrate.TimeOnly)
	adjusted := calibrate.Rank(samples, calibrate.Univariate)
	fmt.Println("raw order:     ", raw.Order)
	fmt.Println("adjusted order:", adjusted.Order)
	// Output:
	// raw order:      [0 1 2]
	// adjusted order: [0 2 1]
}

// ExampleRanking_Weights converts scores into dispatch weights
// proportional to predicted speed.
func ExampleRanking_Weights() {
	r := calibrate.Ranking{Score: map[int]float64{0: 1.0, 1: 2.0}}
	w := r.Weights([]int{0, 1})
	fmt.Printf("%.2f %.2f\n", w[0], w[1])
	// Output:
	// 0.67 0.33
}
