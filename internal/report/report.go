// Package report renders fixed-width text tables for the benchmark harness
// and CLIs — the rows the paper-shaped experiment output is printed in.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows under a header and renders them aligned.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteString("\n")
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}
