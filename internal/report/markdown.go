package report

// Markdown rendering: the same tables the CLIs print as fixed-width text
// render as GitHub pipe tables, and Doc assembles whole documents
// (EXPERIMENTS.md, DESIGN.md) from headings, paragraphs, tables, and
// checklists. Every byte is a pure function of the inputs — no clocks, no
// map iteration — so regenerating a document from unchanged inputs is
// byte-identical, which is what lets CI fail on drift.

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// mdCell makes one table cell safe inside a pipe table: pipes are escaped
// and line breaks collapse to spaces.
func mdCell(s string) string {
	s = strings.ReplaceAll(s, "\n", " ")
	return strings.ReplaceAll(s, "|", "\\|")
}

// Markdown writes t as a GitHub pipe table, columns padded so the source
// stays readable. The title renders as a bold lead-in line and notes as
// italicised footnotes.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	headers := make([]string, len(t.headers))
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		headers[i] = mdCell(h)
		widths[i] = utf8.RuneCountInString(headers[i])
		if widths[i] < 3 { // room for the --- separator
			widths[i] = 3
		}
	}
	rows := make([][]string, len(t.rows))
	for r, row := range t.rows {
		rows[r] = make([]string, len(row))
		for i, cell := range row {
			rows[r][i] = mdCell(cell)
			if n := utf8.RuneCountInString(rows[r][i]); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) {
		b.WriteString("|")
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			b.WriteString(" ")
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(cell)))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	line(headers)
	sep := make([]string, len(widths))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "\n*note: %s*\n", mdCell(n))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MarkdownString renders the table as markdown.
func (t *Table) MarkdownString() string {
	var b strings.Builder
	_ = t.Markdown(&b)
	return b.String()
}

// Doc assembles a markdown document as a flat sequence of blocks —
// headings, paragraphs, tables, code fences, list items — with one blank
// line between blocks and none between consecutive list items. It exists
// for generated documents, so its output is deterministic by construction.
type Doc struct {
	b      strings.Builder
	inList bool
}

// NewDoc returns an empty document.
func NewDoc() *Doc { return &Doc{} }

// block separates a new non-list block from whatever came before.
func (d *Doc) block() {
	d.inList = false
	if d.b.Len() > 0 {
		d.b.WriteString("\n")
	}
}

// Heading writes a level-n heading (clamped to 1..6).
func (d *Doc) Heading(level int, format string, args ...any) {
	if level < 1 {
		level = 1
	}
	if level > 6 {
		level = 6
	}
	d.block()
	fmt.Fprintf(&d.b, "%s %s\n", strings.Repeat("#", level), fmt.Sprintf(format, args...))
}

// Para writes one paragraph.
func (d *Doc) Para(format string, args ...any) {
	d.block()
	fmt.Fprintf(&d.b, "%s\n", fmt.Sprintf(format, args...))
}

// Bullet writes one list item; consecutive items form one list.
func (d *Doc) Bullet(format string, args ...any) {
	if !d.inList {
		d.block()
		d.inList = true
	}
	fmt.Fprintf(&d.b, "- %s\n", fmt.Sprintf(format, args...))
}

// Check writes one task-list item: `- [x] name` when pass, `- [ ] name
// — FAIL` otherwise. Like Bullet, consecutive checks form one list.
func (d *Doc) Check(name string, pass bool) {
	if !d.inList {
		d.block()
		d.inList = true
	}
	if pass {
		fmt.Fprintf(&d.b, "- [x] %s\n", name)
	} else {
		fmt.Fprintf(&d.b, "- [ ] %s — FAIL\n", name)
	}
}

// Table embeds t as a pipe table.
func (d *Doc) Table(t *Table) {
	d.block()
	_ = t.Markdown(&d.b)
}

// Code writes a fenced code block.
func (d *Doc) Code(lang, body string) {
	d.block()
	fmt.Fprintf(&d.b, "```%s\n%s", lang, body)
	if !strings.HasSuffix(body, "\n") {
		d.b.WriteString("\n")
	}
	d.b.WriteString("```\n")
}

// Raw appends s verbatim as its own block.
func (d *Doc) Raw(s string) {
	d.block()
	d.b.WriteString(s)
	if !strings.HasSuffix(s, "\n") {
		d.b.WriteString("\n")
	}
}

// String returns the document.
func (d *Doc) String() string { return d.b.String() }
