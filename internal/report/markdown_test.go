package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// sampleDoc builds the document the golden file pins down: every block
// kind, a table with mixed cell types, escaping, and notes.
func sampleDoc() *Doc {
	tb := NewTable("Throughput by skeleton", "skeleton", "tasks", "tput", "ok|flag")
	tb.AddRow("farm", 200, 1234.5, "yes")
	tb.AddRow("pipeline|3", 200, 7.0, "no")
	tb.AddNote("pipe | in a note")

	d := NewDoc()
	d.Heading(1, "Sample %s", "report")
	d.Para("A paragraph with %d interpolations.", 1)
	d.Heading(2, "Results")
	d.Table(tb)
	d.Bullet("first item")
	d.Bullet("second item")
	d.Check("shape-holds", true)
	d.Check("shape-breaks", false)
	d.Code("sh", "go run ./cmd/graspbench -write-docs")
	d.Raw("raw trailing block")
	return d
}

func TestDocGolden(t *testing.T) {
	got := sampleDoc().String()
	path := filepath.Join("testdata", "doc.golden.md")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (re-run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("doc drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestDocDeterministic(t *testing.T) {
	first := sampleDoc().String()
	for i := 0; i < 3; i++ {
		if again := sampleDoc().String(); again != first {
			t.Fatalf("render %d differs from first render", i)
		}
	}
}

func TestMarkdownTableAlignment(t *testing.T) {
	tb := NewTable("", "name", "v")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 123456)
	lines := strings.Split(strings.TrimRight(tb.MarkdownString(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), lines)
	}
	// Every line has the same width and the same pipe positions.
	for i, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Errorf("line %d width %d != header width %d", i+1, len(l), len(lines[0]))
		}
		for pos, c := range lines[0] {
			if c == '|' && l[pos] != '|' {
				t.Errorf("line %d: pipe misaligned at column %d: %q", i+1, pos, l)
			}
		}
	}
	if !strings.HasPrefix(lines[1], "| ----") {
		t.Errorf("separator line = %q", lines[1])
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tb := NewTable("", "h")
	tb.AddRow("a|b")
	out := tb.MarkdownString()
	if !strings.Contains(out, `a\|b`) {
		t.Errorf("pipe not escaped: %q", out)
	}
	tb2 := NewTable("", "h")
	tb2.AddRow("line\nbreak")
	if out := tb2.MarkdownString(); !strings.Contains(out, "line break") {
		t.Errorf("newline not collapsed: %q", out)
	}
}

func TestDocCheckRendering(t *testing.T) {
	d := NewDoc()
	d.Check("good", true)
	d.Check("bad", false)
	out := d.String()
	if !strings.Contains(out, "- [x] good\n") || !strings.Contains(out, "- [ ] bad — FAIL\n") {
		t.Errorf("checks = %q", out)
	}
	if strings.Contains(out, "\n\n- [ ]") {
		t.Errorf("blank line splits the checklist: %q", out)
	}
}
