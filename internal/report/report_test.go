package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := NewTable("T1", "name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("much-longer-name", 123456)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "T1" {
		t.Errorf("title line = %q", lines[0])
	}
	// Header, separator, two rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// All data lines equal width (aligned columns).
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header/separator width mismatch: %q vs %q", lines[1], lines[2])
	}
	if !strings.Contains(lines[3], "short") || !strings.Contains(lines[4], "123456") {
		t.Errorf("rows wrong: %v", lines[3:])
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(3.14159)
	if !strings.Contains(tb.String(), "3.142") {
		t.Errorf("float not formatted: %q", tb.String())
	}
}

func TestNotes(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(1)
	tb.AddNote("shape holds: %d > %d", 2, 1)
	if !strings.Contains(tb.String(), "note: shape holds: 2 > 1") {
		t.Errorf("note missing: %q", tb.String())
	}
}

func TestNumRows(t *testing.T) {
	tb := NewTable("", "a")
	if tb.NumRows() != 0 {
		t.Error("empty table rows != 0")
	}
	tb.AddRow(1)
	tb.AddRow(2)
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestEmptyTitleOmitted(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(1)
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("no leading blank line expected")
	}
	first := strings.Split(tb.String(), "\n")[0]
	if first != "a" {
		t.Errorf("first line = %q, want header", first)
	}
}
