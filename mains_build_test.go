// Compile checks for every main package under cmd/ and examples/. These
// binaries carry no unit tests of their own, so without this gate a
// refactor can silently break them: the build check keeps all of them
// green under plain `go test ./...`.
package grasp_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// mainDirs lists the repo-relative directories holding main packages.
func mainDirs(t *testing.T) []string {
	t.Helper()
	var dirs []string
	for _, parent := range []string{"cmd", "examples"} {
		entries, err := os.ReadDir(parent)
		if err != nil {
			t.Fatalf("read %s: %v", parent, err)
		}
		for _, e := range entries {
			if e.IsDir() {
				dirs = append(dirs, "./"+filepath.Join(parent, e.Name()))
			}
		}
	}
	if len(dirs) < 10 {
		t.Fatalf("found only %d main packages, expected at least 10: %v", len(dirs), dirs)
	}
	return dirs
}

func TestMainPackagesBuild(t *testing.T) {
	goBin := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goBin); err != nil {
		var lookErr error
		goBin, lookErr = exec.LookPath("go")
		if lookErr != nil {
			t.Skip("go toolchain not available")
		}
	}
	for _, dir := range mainDirs(t) {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(goBin, "build", "-o", os.DevNull, dir)
			cmd.Dir = "."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Errorf("go build %s failed: %v\n%s", dir, err, out)
			}
		})
	}
}
